package core

import (
	"errors"
	"testing"

	"bpush/internal/model"
)

func TestInvOnlyCommitWithoutUpdates(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	h.mustRead(3)
	h.cycle() // empty cycle
	h.mustRead(7)
	info := h.mustCommit()
	if info.SerializationCycle != h.cur.Cycle {
		t.Errorf("serialization cycle = %v, want commit cycle %v", info.SerializationCycle, h.cur.Cycle)
	}
	if len(info.Reads) != 2 {
		t.Errorf("len(Reads) = %d, want 2", len(info.Reads))
	}
}

func TestInvOnlyAbortsOnReadsetInvalidation(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3) // item 3 updated during this cycle
	h.wantAbort(7)
	if _, err := h.scheme.Commit(); !errors.Is(err, ErrAborted) {
		t.Errorf("Commit err = %v, want ErrAborted", err)
	}
}

func TestInvOnlySurvivesUnrelatedUpdates(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(8) // unrelated item
	h.mustRead(8)
	info := h.mustCommit()
	// Reads the *new* value of 8: invalidation-only gives the most
	// current view (state of the commit cycle).
	if info.Reads[1].Value != h.currentValue(8) {
		t.Error("read of updated item did not observe the current value")
	}
}

func TestInvOnlyAbortLatched(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3)
	h.wantAbort(5)
	// Still aborted on further operations.
	if _, _, err := h.scheme.ServeChannel(6, 0); !errors.Is(err, ErrAborted) {
		t.Errorf("ServeChannel after abort = %v, want ErrAborted", err)
	}
	// A fresh transaction is unaffected.
	h.scheme.Abort()
	h.mustBegin()
	h.mustRead(5)
	h.mustCommit()
}

func TestInvOnlyLifecycleErrors(t *testing.T) {
	s, err := New(Options{Kind: KindInvOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err == nil {
		t.Error("Begin before first cycle succeeded")
	}
	h := newHarness(t, 5, 1, Options{Kind: KindInvOnly})
	if _, _, err := h.scheme.ServeChannel(1, 0); !errors.Is(err, ErrNoTxn) {
		t.Errorf("ServeChannel without txn = %v, want ErrNoTxn", err)
	}
	if _, err := h.scheme.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Errorf("Commit without txn = %v, want ErrNoTxn", err)
	}
	h.mustBegin()
	if err := h.scheme.Begin(); !errors.Is(err, ErrTxnActive) {
		t.Errorf("second Begin = %v, want ErrTxnActive", err)
	}
	if !h.scheme.Active() {
		t.Error("Active() = false with open txn")
	}
}

func TestInvOnlyReplayedCycleIgnored(t *testing.T) {
	h := newHarness(t, 5, 1, Options{Kind: KindInvOnly})
	if err := h.scheme.NewCycle(h.cur); err != nil {
		t.Errorf("replaying the same cycle = %v, want silent discard", err)
	}
	h.mustBegin()
	h.mustRead(3)
	h.mustCommit()
}

func TestInvOnlyUnknownItem(t *testing.T) {
	h := newHarness(t, 5, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	if _, err := h.read(99); err == nil {
		t.Error("read of unknown item succeeded")
	}
}

func TestInvOnlyMissedCycleAborts(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle()
	h.resume()
	h.wantAbort(5)
}

func TestInvOnlyCacheServesSecondRead(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, CacheSize: 5})
	h.mustBegin()
	h.mustRead(3)
	h.mustCommit()
	h.mustBegin()
	r := h.mustRead(3)
	if r.Source != SourceCache {
		t.Errorf("second read source = %v, want cache", r.Source)
	}
	h.mustCommit()
}

func TestInvOnlyCacheInvalidationForcesChannel(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, CacheSize: 5})
	h.mustBegin()
	h.mustRead(3)
	h.mustCommit()
	h.cycle(3)
	h.mustBegin()
	r := h.mustRead(3)
	if r.Source != SourceBroadcast {
		t.Errorf("read of invalidated page source = %v, want broadcast", r.Source)
	}
	if r.Obs.Value != h.currentValue(3) {
		t.Error("read did not observe the current value")
	}
	h.mustCommit()
}

func TestInvOnlyCacheAutoprefetch(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, CacheSize: 5})
	h.mustBegin()
	h.mustRead(3)
	h.mustCommit()
	h.cycle(3) // invalidates the cached page
	h.cycle()  // autoprefetch takes effect at the next cycle boundary
	h.mustBegin()
	r := h.mustRead(3)
	if r.Source != SourceCache {
		t.Errorf("read after autoprefetch source = %v, want cache", r.Source)
	}
	if r.Obs.Value != h.currentValue(3) {
		t.Error("autoprefetched page holds a stale value")
	}
	h.mustCommit()
}

func TestVCacheContinuesFromOldEnoughEntries(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10})
	// Seed the cache with items 4 and 5 at cycle 1.
	h.mustBegin()
	h.mustRead(4)
	h.mustRead(5)
	h.mustCommit()

	h.mustBegin()
	h.mustRead(3)
	oldVal5 := h.currentValue(5)
	h.cycle(3, 5) // 3 invalidates the readset -> marked; 5's cached copy predates u
	r := h.mustRead(5)
	if r.Source != SourceCache {
		t.Fatalf("marked read source = %v, want cache", r.Source)
	}
	if r.Obs.Value != oldVal5 {
		t.Errorf("marked read of 5 = %d, want pre-update value %d", r.Obs.Value, oldVal5)
	}
	info := h.mustCommit()
	if info.SerializationCycle != 1 {
		t.Errorf("serialization cycle = %v, want u-1 = 1 (marked at cycle 2)", info.SerializationCycle)
	}
}

func TestVCacheAbortsWhenCacheLacksOldVersion(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3)     // marked at cycle 3
	h.wantAbort(7) // 7 was never cached
}

func TestVCacheAbortsWhenCachedVersionTooNew(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(5) // updates 5; not in readset
	// Cache 5's fresh value (version = current cycle).
	h.mustRead(5)
	h.cycle(3) // now the readset is invalidated: u = 4
	// 5's cached version has cycle 3 < 4... it qualifies. Read 6 instead,
	// never cached -> abort; then verify 5 succeeded first.
	r := h.mustRead(5)
	if r.Obs.Version >= 4 {
		t.Errorf("served version %v, want < u=4", r.Obs.Version)
	}
	h.wantAbort(6)
}

func TestVCacheMarkedRejectsNewCurrentOnChannel(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3, 7) // marked; 7 updated the same cycle (version too new)
	h.wantAbort(7)
}

func TestVCacheChannelOldReadsExtension(t *testing.T) {
	h := newHarness(t, 10, 1, Options{
		Kind: KindVCache, CacheSize: 10, AllowChannelOldReads: true,
	})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3) // marked at u=2
	// Item 7 was never updated: its on-air version (cycle 1) predates u,
	// so the extension serves it from the channel.
	r := h.mustRead(7)
	if r.Source != SourceBroadcast {
		t.Fatalf("source = %v, want broadcast", r.Source)
	}
	info := h.mustCommit()
	if info.SerializationCycle != 1 {
		t.Errorf("serialization cycle = %v, want u-1 = 1", info.SerializationCycle)
	}
}

func TestVCacheRequiresCache(t *testing.T) {
	if _, err := New(Options{Kind: KindVCache}); err == nil {
		t.Error("VCache without cache accepted")
	}
}

func TestVCacheFreshCommitSerializesAtCommitCycle(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(8)
	h.mustRead(4)
	info := h.mustCommit()
	if info.SerializationCycle != h.cur.Cycle {
		t.Errorf("fresh VCache serialization = %v, want commit cycle %v", info.SerializationCycle, h.cur.Cycle)
	}
}

func TestBucketGranularityConservativeAbort(t *testing.T) {
	// Buckets of 5 items: updating item 2 invalidates items 1..5.
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, BucketGranularity: 5})
	h.mustBegin()
	h.mustRead(4)
	h.cycle(2) // same bucket as 4
	h.wantAbort(9)
}

func TestBucketGranularityOtherBucketSurvives(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, BucketGranularity: 5})
	h.mustBegin()
	h.mustRead(9)
	h.cycle(2) // bucket 0; item 9 is in bucket 1
	h.mustRead(7)
	h.mustCommit()
}

func TestBucketGranularityRejectedForSGT(t *testing.T) {
	if _, err := New(Options{Kind: KindSGT, BucketGranularity: 4}); err == nil {
		t.Error("bucket granularity accepted for SGT")
	}
	if _, err := New(Options{Kind: KindMVBroadcast, BucketGranularity: 4}); err == nil {
		t.Error("bucket granularity accepted for multiversion broadcast")
	}
}

func TestFactoryValidation(t *testing.T) {
	if _, err := New(Options{Kind: Kind(0)}); err == nil {
		t.Error("zero kind accepted")
	}
	if _, err := New(Options{Kind: KindInvOnly, CacheSize: -1}); err == nil {
		t.Error("negative cache size accepted")
	}
	if _, err := New(Options{Kind: KindInvOnly, BucketGranularity: -1}); err == nil {
		t.Error("negative granularity accepted")
	}
	if _, err := New(Options{Kind: KindMVCache, CacheSize: 10, OldFraction: 1.5}); err == nil {
		t.Error("old fraction > 1 accepted")
	}
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		opts Options
		want string
	}{
		{Options{Kind: KindInvOnly}, "inv-only"},
		{Options{Kind: KindInvOnly, CacheSize: 4}, "inv-only+cache"},
		{Options{Kind: KindVCache, CacheSize: 4}, "inv-only+vcache"},
		{Options{Kind: KindMVBroadcast}, "multiversion"},
		{Options{Kind: KindMVBroadcast, CacheSize: 4}, "multiversion+cache"},
		{Options{Kind: KindMVCache, CacheSize: 4}, "mv-cache"},
		{Options{Kind: KindSGT}, "sgt"},
		{Options{Kind: KindSGT, CacheSize: 4}, "sgt+cache"},
	}
	for _, tt := range tests {
		s, err := New(tt.opts)
		if err != nil {
			t.Fatalf("%+v: %v", tt.opts, err)
		}
		if s.Name() != tt.want {
			t.Errorf("Name() = %q, want %q", s.Name(), tt.want)
		}
		if s.Kind() != tt.opts.Kind {
			t.Errorf("Kind() = %v, want %v", s.Kind(), tt.opts.Kind)
		}
	}
}

func TestAbortErrorMatchesErrAborted(t *testing.T) {
	err := abortErr("item %v gone", model.ItemID(3))
	if !errors.Is(err, ErrAborted) {
		t.Error("AbortError does not match ErrAborted")
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatal("errors.As failed")
	}
	if ae.Reason == "" {
		t.Error("empty abort reason")
	}
}
