package core

import (
	"errors"
	"math/rand"
	"testing"

	"bpush/internal/model"
	"bpush/internal/sg"
)

// refSGT is a reference SGT decision procedure that takes no shortcuts: it
// keeps every delta (no pruning), records precedence targets to ALL
// transactions that overwrote a readset item (not just the first writer,
// Claim 2), and rejects a read when any transaction that EVER wrote the
// item (not just the last writer, Claim 3) is reachable from a target.
// Claims 2 and 3 assert these decisions coincide with the optimized
// scheme's; this differential test checks exactly that over random
// workloads.
type refSGT struct {
	graph   *sg.Graph
	writers map[model.ItemID][]model.TxID // all writers per item, commit order
	targets []model.TxID
	readset map[model.ItemID]struct{}
}

func newRefSGT() *refSGT {
	return &refSGT{
		graph:   sg.New(),
		writers: make(map[model.ItemID][]model.TxID),
		readset: make(map[model.ItemID]struct{}),
	}
}

func (r *refSGT) begin() {
	r.targets = nil
	r.readset = make(map[model.ItemID]struct{})
}

func (r *refSGT) newCycle(t *testing.T, h *harness, cycle model.Cycle) {
	t.Helper()
	log, ok := h.logs[cycle]
	if !ok {
		return // cycle 1 has no log
	}
	if err := r.graph.Apply(log.Delta); err != nil {
		t.Fatal(err)
	}
	for item, ws := range log.AllWriters {
		if _, read := r.readset[item]; read {
			r.targets = append(r.targets, ws...)
		}
		r.writers[item] = append(r.writers[item], ws...)
	}
}

// rejects reports whether the all-edges policy rejects a read of item.
func (r *refSGT) rejects(item model.ItemID) bool {
	for _, w := range r.writers[item] {
		if r.graph.ReachableFromAny(r.targets, w) {
			return true
		}
	}
	return false
}

func (r *refSGT) read(item model.ItemID) {
	r.readset[item] = struct{}{}
}

func TestSGTMatchesAllEdgesReference(t *testing.T) {
	const (
		dbSize  = 30
		queries = 150
		trials  = 5
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		h := newHarness(t, dbSize, 1, Options{Kind: KindSGT})
		ref := newRefSGT()

		advance := func() {
			txs := make([]model.ServerTx, 2)
			for i := range txs {
				w1 := model.ItemID(rng.Intn(dbSize) + 1)
				w2 := model.ItemID(rng.Intn(dbSize) + 1)
				txs[i] = rwTx([]model.ItemID{model.ItemID(rng.Intn(dbSize) + 1)}, []model.ItemID{w1, w2})
			}
			h.cycleTxs(txs...)
			ref.newCycle(t, h, h.cur.Cycle)
		}

		for q := 0; q < queries; q++ {
			if err := h.scheme.Begin(); err != nil {
				t.Fatal(err)
			}
			ref.begin()
			numReads := rng.Intn(6) + 2
			aborted := false
			for i := 0; i < numReads; i++ {
				item := model.ItemID(rng.Intn(dbSize) + 1)
				wantReject := ref.rejects(item)
				_, err := h.read(item)
				gotReject := errors.Is(err, ErrAborted)
				if err != nil && !gotReject {
					t.Fatal(err)
				}
				if gotReject != wantReject {
					t.Fatalf("trial %d query %d read %v: scheme reject=%v, all-edges reference reject=%v (Claims 2/3 violated)",
						trial, q, item, gotReject, wantReject)
				}
				if gotReject {
					aborted = true
					break
				}
				ref.read(item)
				if rng.Intn(3) == 0 {
					advance()
				}
			}
			if aborted {
				h.scheme.Abort()
				continue
			}
			if _, err := h.scheme.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSGTCommittedTransactionsAreSerializable is the master oracle for SGT
// (Theorem 3): for every committed query, rebuild the FULL serialization
// graph including R — dependency edges from the writers of the values R
// read, precedence edges to every transaction that overwrote a readset item
// after the version R observed — and assert R participates in no cycle.
func TestSGTCommittedTransactionsAreSerializable(t *testing.T) {
	const dbSize = 24
	rng := rand.New(rand.NewSource(7))
	h := newHarness(t, dbSize, 1, Options{Kind: KindSGT})

	full := sg.New() // the unpruned server graph
	committed := 0
	for q := 0; q < 300; q++ {
		if err := h.scheme.Begin(); err != nil {
			t.Fatal(err)
		}
		numReads := rng.Intn(6) + 2
		var obs []model.ReadObservation
		aborted := false
		for i := 0; i < numReads; i++ {
			item := model.ItemID(rng.Intn(dbSize) + 1)
			r, err := h.read(item)
			if errors.Is(err, ErrAborted) {
				aborted = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, r.Obs)
			if rng.Intn(2) == 0 {
				txs := []model.ServerTx{rwTx(
					[]model.ItemID{model.ItemID(rng.Intn(dbSize) + 1)},
					[]model.ItemID{model.ItemID(rng.Intn(dbSize) + 1), model.ItemID(rng.Intn(dbSize) + 1)},
				)}
				h.cycleTxs(txs...)
				if err := full.Apply(h.logs[h.cur.Cycle].Delta); err != nil {
					t.Fatal(err)
				}
			}
		}
		if aborted {
			h.scheme.Abort()
			continue
		}
		info, err := h.scheme.Commit()
		if err != nil {
			t.Fatal(err)
		}
		committed++
		assertSerializable(t, h, full, info)
	}
	if committed == 0 {
		t.Fatal("no queries committed; oracle never exercised")
	}
}

// assertSerializable checks that no precedence target of the committed
// query can reach any of its dependency sources in the full graph — i.e.
// adding R with all its edges keeps the graph acyclic.
func assertSerializable(t *testing.T, h *harness, full *sg.Graph, info CommitInfo) {
	t.Helper()
	// Dependency sources: writers of the observed values.
	var sources []model.TxID
	// Precedence targets: every writer of a readset item in a cycle
	// after the observed version, up to the commit cycle.
	var targets []model.TxID
	for _, o := range info.Reads {
		if !o.Writer.IsZero() {
			sources = append(sources, o.Writer)
		}
		for c := o.Version + 1; c <= info.CommitCycle; c++ {
			log, ok := h.logs[c]
			if !ok {
				continue
			}
			targets = append(targets, log.AllWriters[o.Item]...)
		}
	}
	for _, src := range sources {
		if full.ReachableFromAny(targets, src) {
			t.Fatalf("committed query is NOT serializable: path from an overwriter back to dependency source %v", src)
		}
	}
}
