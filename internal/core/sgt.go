package core

import (
	"fmt"

	"bpush/internal/broadcast"
	"bpush/internal/cache"
	"bpush/internal/det"
	"bpush/internal/model"
	"bpush/internal/obs"
	"bpush/internal/sg"
)

// sgt implements the serialization-graph-testing method (§3.3, Theorem 3).
//
// The client maintains a local copy of the (server) serialization graph,
// built from the per-cycle deltas on the broadcast. For the active
// read-only transaction R it keeps only R's *outgoing* precedence edges:
// at the beginning of each cycle, for every item of R's readset that
// appears in the augmented invalidation report, an edge R -> T_f is
// recorded, T_f being the first transaction that overwrote the item during
// the previous cycle (one edge suffices by Claim 2). A read of an item
// last written by T_l closes a cycle exactly when T_l is reachable from
// one of those precedence targets (Claim 3 and Lemma 1); such reads are
// rejected, aborting the transaction. Incoming dependency edges never need
// to be stored, and only the subgraphs from the first invalidation cycle
// onward are retained (the Lemma 1 space bound).
type sgt struct {
	opts Options

	graph  *sg.Graph
	cur    *broadcast.Bcast
	prev   *broadcast.Bcast
	cache  *cache.Cache // nil when cacheless
	t      txn
	view   cycleView // this cycle's report view (shared index or local scratch)
	resync bool      // a cycle was missed; the next NewCycle may jump

	// targets are R's precedence targets (the heads of its outgoing
	// edges); targetSet dedupes them.
	targets   []model.TxID
	targetSet map[model.TxID]struct{}
	// keyScratch is the sorted-readset-walk scratch, reused per cycle.
	keyScratch []model.ItemID
	// invalidFrom is c_o: the cycle of the first readset invalidation,
	// the floor below which subgraphs can be pruned.
	invalidFrom model.Cycle
	// ceiling, when non-zero, caps acceptable version cycles after a
	// tolerated disconnection: only values that predate the last becast
	// heard before the gap can still be certified (§5.2.2 enhancement).
	ceiling model.Cycle
}

var _ Scheme = (*sgt)(nil)

func newSGT(opts Options) (*sgt, error) {
	s := &sgt{opts: opts, graph: sg.New()}
	if opts.CacheSize > 0 {
		c, err := cache.New(opts.CacheSize)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	return s, nil
}

// Name implements Scheme.
func (s *sgt) Name() string {
	if s.cache != nil {
		return "sgt+cache"
	}
	return "sgt"
}

// Kind implements Scheme.
func (s *sgt) Kind() Kind { return KindSGT }

// Active implements Scheme.
func (s *sgt) Active() bool { return s.t.active }

// Begin implements Scheme.
func (s *sgt) Begin() error {
	if s.cur == nil {
		return fmt.Errorf("core: Begin before first cycle")
	}
	if err := s.t.begin(s.opts.Recorder != nil); err != nil {
		return err
	}
	s.clearTxnGraphState()
	return nil
}

// Abort implements Scheme.
func (s *sgt) Abort() {
	s.t.reset()
	s.clearTxnGraphState()
}

func (s *sgt) clearTxnGraphState() {
	// Owner-retained scratch: capacity survives across transactions so
	// the per-cycle target walk stops allocating at steady state.
	s.targets = s.targets[:0]
	if s.targetSet == nil {
		s.targetSet = make(map[model.TxID]struct{})
	} else {
		clear(s.targetSet)
	}
	s.invalidFrom = 0
	s.ceiling = 0
}

// NewCycle implements Scheme.
//
//lint:hotpath runs once per client per broadcast cycle
func (s *sgt) NewCycle(b *broadcast.Bcast) error {
	if s.cur != nil {
		if b.Cycle <= s.cur.Cycle {
			return nil // duplicate or late frame: already processed
		}
		if b.Cycle != s.cur.Cycle+1 && !s.resync {
			// Undeclared gap: downgrade the lost cycles to misses.
			if err := missRange(s, s.cur.Cycle+1, b.Cycle); err != nil {
				return err
			}
		}
	}
	s.resync = false
	s.prev, s.cur = s.cur, b
	autoprefetch(s.cache, s.prev)

	// Space bound (Lemma 1): only subgraphs from c_o onward matter; with
	// no invalidated active transaction, nothing before the current
	// cycle can ever join a cycle through a future query.
	floor := b.Cycle
	if s.t.active && s.invalidFrom != 0 {
		floor = s.invalidFrom
	}
	s.graph.PruneBefore(floor)
	s.view.load(b, 1, s.opts.ForceLocalIndex) // SGT is defined at item granularity
	if idx := s.view.idx; idx != nil {
		// Shared path: the delta was validated, deduplicated, and grouped
		// into adjacency form once, by the producer; integrating it is a
		// straight merge.
		if cd := idx.Delta(); cd != nil {
			s.graph.ApplyCompiled(cd)
		}
	} else if err := s.graph.Apply(b.Delta); err != nil {
		return fmt.Errorf("core: integrate SG delta: %w", err)
	}

	if s.cache != nil {
		for _, e := range b.Report {
			s.cache.Invalidate(e.Item)
		}
	}
	if s.t.active && s.t.doomed == nil {
		// Sorted readset walk: the precedence-target list (and with it any
		// downstream ordering) must not inherit map-iteration order.
		s.keyScratch = det.AppendSortedKeys(s.keyScratch[:0], s.t.readset)
		for _, item := range s.keyScratch {
			if !s.view.invalidates(item) {
				continue
			}
			tf, ok := s.view.firstWriter(item)
			if !ok {
				continue
			}
			if _, dup := s.targetSet[tf]; dup {
				continue
			}
			//lint:allow hotalloc targetSet is owner-retained and clear()-reused; buckets amortize to steady state
			s.targetSet[tf] = struct{}{}
			//lint:allow hotalloc targets is owner-retained [:0] scratch; capacity amortizes to steady state
			s.targets = append(s.targets, tf)
			if s.invalidFrom == 0 {
				s.invalidFrom = b.Cycle
			}
			if rec := s.opts.Recorder; rec != nil {
				// R's outgoing precedence edge R -> T_f (Claim 2).
				rec.Record(obs.Event{
					Type: obs.TypeSGEdge,
					T:    obs.At(b.Cycle, 0),
					Item: uint32(item),
					From: "R",
					To:   tf.String(),
				})
			}
		}
	}
	return nil
}

// MissCycle implements Scheme. Without the §5.2.2 enhancement a missed
// delta forfeits serializability for the active transaction. With
// TolerateDisconnects, the transaction survives but may only read values
// that predate the last becast it heard: by Claim 1 any cycle through R
// would then need a path from a missed-cycle transaction back to an older
// one, which cannot exist. The cache is flushed either way — missed
// invalidation reports make current entries untrustworthy.
func (s *sgt) MissCycle(c model.Cycle) error {
	if s.t.active && s.t.doomed == nil {
		if s.opts.TolerateDisconnects {
			if s.ceiling == 0 && s.cur != nil {
				s.ceiling = s.cur.Cycle
			}
		} else {
			s.t.doomed = abortErr("missed cycle %v (serialization-graph delta lost)", c)
		}
	}
	flushCache(s.cache)
	s.resync = true
	return nil
}

// ServeLocal implements Scheme.
func (s *sgt) ServeLocal(item model.ItemID) (Read, bool, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, false, err
	}
	if s.cache == nil {
		return Read{}, false, nil
	}
	v, ok := s.cache.Get(item)
	if !ok {
		return Read{}, false, nil
	}
	if err := s.accept(item, v); err != nil {
		return Read{}, false, err
	}
	return s.deliver(item, v, SourceCache, 0), true, nil
}

// ServeChannel implements Scheme.
func (s *sgt) ServeChannel(item model.ItemID, pos int) (Read, int, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, 0, err
	}
	if s.cur.Position(item) < 0 {
		if s.cur.InDatabase(item) {
			// Not in this interval's chunk (§7 h-interval organization);
			// the item comes around in a later becast.
			return Read{}, 0, ErrNextCycle
		}
		return Read{}, 0, fmt.Errorf("core: %v not in the database", item)
	}
	slot := s.cur.NextPosition(item, pos)
	if slot < 0 {
		return Read{}, 0, ErrNextCycle
	}
	v, err := s.cur.ReadCurrent(item)
	if err != nil {
		return Read{}, 0, err
	}
	if err := s.accept(item, v); err != nil {
		return Read{}, 0, err
	}
	if s.cache != nil {
		s.cache.Put(item, v)
	}
	return s.deliver(item, v, SourceBroadcast, slot), slot, nil
}

// accept runs the SGT read test: the read of a value last written by
// v.Writer is admissible iff adding the dependency edge T_l -> R closes no
// cycle, i.e. iff T_l is not reachable from any of R's precedence targets.
func (s *sgt) accept(item model.ItemID, v model.Version) error {
	if s.ceiling != 0 && v.Cycle > s.ceiling {
		s.t.doomed = abortErr("%v version %v postdates disconnection ceiling %v", item, v.Cycle, s.ceiling)
		return s.t.doomed
	}
	if len(s.targets) > 0 && !v.Writer.IsZero() {
		hit := s.graph.ReachableFromAny(s.targets, v.Writer)
		if rec := s.opts.Recorder; rec != nil {
			rec.Record(obs.Event{
				Type: obs.TypeSGCycleTest,
				T:    obs.At(s.cur.Cycle, 0),
				Item: uint32(item),
				To:   v.Writer.String(),
				Hit:  hit,
			})
		}
		if hit {
			s.t.doomed = abortErr("reading %v from %v closes a serialization cycle", item, v.Writer)
			return s.t.doomed
		}
	}
	return nil
}

func (s *sgt) deliver(item model.ItemID, v model.Version, src ReadSource, slot int) Read {
	ro := model.ReadObservation{Item: item, Value: v.Value, Version: v.Cycle, Writer: v.Writer}
	s.t.record(ro, s.cur)
	recordRead(s.opts.Recorder, s.cur.Cycle, slot, item, v, src)
	return Read{Obs: ro, Source: src}
}

// Commit implements Scheme. SGT serializes R against a state produced by a
// serializable execution of a subset of the transactions committed during
// R's lifetime — not necessarily a broadcast state — so SerializationCycle
// is 0 and correctness is certified by the acyclicity argument (the
// simulator's oracle rebuilds the full graph including R).
func (s *sgt) Commit() (CommitInfo, error) {
	if err := s.t.checkServable(); err != nil {
		s.t.reset()
		s.clearTxnGraphState()
		return CommitInfo{}, err
	}
	start := s.t.start
	if start == 0 {
		start = s.cur.Cycle
	}
	info := CommitInfo{
		Reads:              s.t.reads,
		StartCycle:         start,
		CommitCycle:        s.cur.Cycle,
		SerializationCycle: 0,
	}
	s.t.emitStaleness(s.opts.Recorder, s.Name(), s.cur.Cycle)
	s.t.reset()
	s.clearTxnGraphState()
	return info, nil
}

// GraphStats exposes the local graph's size for instrumentation (space
// overhead experiments).
func (s *sgt) GraphStats() (nodes, edges int) {
	return s.graph.NodeCount(), s.graph.EdgeCount()
}
