package core

import (
	"errors"
	"testing"

	"bpush/internal/broadcast"
	"bpush/internal/model"
	"bpush/internal/server"
)

// harness wires a server, the broadcast assembler, and one scheme together
// for protocol-level unit tests.
type harness struct {
	t      *testing.T
	srv    *server.Server
	scheme Scheme
	cur    *broadcast.Bcast
	prog   broadcast.Program
	logs   map[model.Cycle]*server.CycleLog
	states map[model.Cycle]model.DBState
}

func newHarness(t *testing.T, dbSize, maxVersions int, opts Options) *harness {
	t.Helper()
	srv, err := server.New(server.Config{DBSize: dbSize, MaxVersions: maxVersions})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:      t,
		srv:    srv,
		scheme: sch,
		prog:   broadcast.FlatProgram(dbSize),
		logs:   make(map[model.Cycle]*server.CycleLog),
		states: make(map[model.Cycle]model.DBState),
	}
	h.states[1] = srv.Snapshot()
	b, err := broadcast.Assemble(srv, nil, h.prog)
	if err != nil {
		t.Fatal(err)
	}
	h.cur = b
	if err := sch.NewCycle(b); err != nil {
		t.Fatal(err)
	}
	return h
}

// cycleTxs commits the given transactions and delivers the next becast.
func (h *harness) cycleTxs(txs ...model.ServerTx) {
	h.t.Helper()
	log, err := h.srv.CommitAndAdvance(txs)
	if err != nil {
		h.t.Fatal(err)
	}
	h.logs[log.Cycle] = log
	h.states[log.Cycle] = h.srv.Snapshot()
	b, err := broadcast.Assemble(h.srv, log, h.prog)
	if err != nil {
		h.t.Fatal(err)
	}
	h.cur = b
	if err := h.scheme.NewCycle(b); err != nil {
		h.t.Fatal(err)
	}
}

// cycle commits one blind-update transaction per item and advances.
func (h *harness) cycle(updates ...model.ItemID) {
	h.t.Helper()
	txs := make([]model.ServerTx, len(updates))
	for i, item := range updates {
		txs[i] = model.ServerTx{Ops: []model.Op{
			{Kind: model.OpRead, Item: item},
			{Kind: model.OpWrite, Item: item},
		}}
	}
	h.cycleTxs(txs...)
}

// skipCycle advances the server one cycle but tells the scheme the becast
// was missed (disconnection).
func (h *harness) skipCycle(updates ...model.ItemID) {
	h.t.Helper()
	txs := make([]model.ServerTx, len(updates))
	for i, item := range updates {
		txs[i] = model.ServerTx{Ops: []model.Op{
			{Kind: model.OpRead, Item: item},
			{Kind: model.OpWrite, Item: item},
		}}
	}
	log, err := h.srv.CommitAndAdvance(txs)
	if err != nil {
		h.t.Fatal(err)
	}
	h.logs[log.Cycle] = log
	h.states[log.Cycle] = h.srv.Snapshot()
	b, err := broadcast.Assemble(h.srv, log, h.prog)
	if err != nil {
		h.t.Fatal(err)
	}
	h.cur = b
	if err := h.scheme.MissCycle(b.Cycle); err != nil {
		h.t.Fatal(err)
	}
}

// skipSilently advances the server one cycle without telling the scheme
// anything at all — the becast is lost in delivery and the client has no
// loss report (undeclared gap).
func (h *harness) skipSilently(updates ...model.ItemID) {
	h.t.Helper()
	txs := make([]model.ServerTx, len(updates))
	for i, item := range updates {
		txs[i] = model.ServerTx{Ops: []model.Op{
			{Kind: model.OpRead, Item: item},
			{Kind: model.OpWrite, Item: item},
		}}
	}
	log, err := h.srv.CommitAndAdvance(txs)
	if err != nil {
		h.t.Fatal(err)
	}
	h.logs[log.Cycle] = log
	h.states[log.Cycle] = h.srv.Snapshot()
	b, err := broadcast.Assemble(h.srv, log, h.prog)
	if err != nil {
		h.t.Fatal(err)
	}
	h.cur = b
}

// resume re-attaches the scheme to the current becast after skipped cycles.
func (h *harness) resume() {
	h.t.Helper()
	if err := h.scheme.NewCycle(h.cur); err != nil {
		h.t.Fatal(err)
	}
}

// read serves one read op like the client runtime would: local first, then
// channel.
func (h *harness) read(item model.ItemID) (Read, error) {
	h.t.Helper()
	if r, ok, err := h.scheme.ServeLocal(item); err != nil || ok {
		return r, err
	}
	r, _, err := h.scheme.ServeChannel(item, 0)
	return r, err
}

// mustRead fails the test if the read does not succeed.
func (h *harness) mustRead(item model.ItemID) Read {
	h.t.Helper()
	r, err := h.read(item)
	if err != nil {
		h.t.Fatalf("read(%v): %v", item, err)
	}
	return r
}

// mustBegin opens a transaction.
func (h *harness) mustBegin() {
	h.t.Helper()
	if err := h.scheme.Begin(); err != nil {
		h.t.Fatal(err)
	}
}

// mustCommit commits and, when the scheme names a serialization cycle,
// verifies the readset against that archived database state (the
// correctness oracle of Theorems 1, 2, 4, 5).
func (h *harness) mustCommit() CommitInfo {
	h.t.Helper()
	info, err := h.scheme.Commit()
	if err != nil {
		h.t.Fatalf("commit: %v", err)
	}
	h.checkConsistent(info)
	return info
}

func (h *harness) checkConsistent(info CommitInfo) {
	h.t.Helper()
	if info.SerializationCycle == 0 {
		return // SGT: checked by the graph oracle in its own tests
	}
	state, ok := h.states[info.SerializationCycle]
	if !ok {
		h.t.Fatalf("no archived state for %v", info.SerializationCycle)
	}
	for _, obs := range info.Reads {
		want, err := state.Get(obs.Item)
		if err != nil {
			h.t.Fatal(err)
		}
		if obs.Value != want {
			h.t.Errorf("readset inconsistent with %v: %v = %d, state holds %d",
				info.SerializationCycle, obs.Item, obs.Value, want)
		}
	}
}

// wantAbort asserts that the next read of item aborts the transaction.
func (h *harness) wantAbort(item model.ItemID) {
	h.t.Helper()
	if _, err := h.read(item); !errors.Is(err, ErrAborted) {
		h.t.Fatalf("read(%v) err = %v, want ErrAborted", item, err)
	}
}

// currentValue returns the value the current becast carries for item.
func (h *harness) currentValue(item model.ItemID) model.Value {
	h.t.Helper()
	v, err := h.cur.ReadCurrent(item)
	if err != nil {
		h.t.Fatal(err)
	}
	return v.Value
}
