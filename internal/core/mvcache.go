package core

import (
	"fmt"
	"math"

	"bpush/internal/broadcast"
	"bpush/internal/cache"
	"bpush/internal/det"
	"bpush/internal/model"
)

// mvCache implements the multiversion caching method (§4.2, Theorem 5):
// invalidation-only reports combined with older versions retained in the
// client cache. When an item read by the transaction is first updated at
// cycle c_u, subsequent reads must observe the version that was current at
// c_u - 1; if the cache holds it (in either partition) the transaction
// continues, otherwise it aborts. Unlike multiversion broadcast, the
// number of retained versions is a property of each client, not of the
// server.
type mvCache struct {
	opts Options

	cur   *broadcast.Bcast
	prev  *broadcast.Bcast
	multi *cache.MultiCache
	t     txn
	view  cycleView   // this cycle's report view (shared index or local scratch)
	cu    model.Cycle // first cycle an item of the readset was invalidated

	// invalidate is the per-cycle invalidation callback, built once at
	// construction; invCycle carries the cycle it applies, so NewCycle
	// allocates no capturing closure.
	invalidate func(model.ItemID)
	invCycle   model.Cycle
	// keyScratch and invScratch are per-cycle walk scratch, reused.
	keyScratch []model.ItemID
	invScratch []model.ItemID
}

var _ Scheme = (*mvCache)(nil)

func newMVCache(opts Options) (*mvCache, error) {
	if opts.CacheSize == 0 {
		return nil, fmt.Errorf("core: %v requires a cache", KindMVCache)
	}
	frac := opts.OldFraction
	if frac == 0 {
		frac = 0.5
	}
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("core: old-version fraction %g outside [0, 1)", frac)
	}
	oldCap := int(math.Round(float64(opts.CacheSize) * frac))
	multi, err := cache.NewMulti(opts.CacheSize-oldCap, oldCap)
	if err != nil {
		return nil, err
	}
	s := &mvCache{opts: opts, multi: multi}
	s.invalidate = func(item model.ItemID) { s.multi.Invalidate(item, s.invCycle) }
	return s, nil
}

// Name implements Scheme.
func (s *mvCache) Name() string { return "mv-cache" }

// Kind implements Scheme.
func (s *mvCache) Kind() Kind { return KindMVCache }

// Active implements Scheme.
func (s *mvCache) Active() bool { return s.t.active }

// Begin implements Scheme.
func (s *mvCache) Begin() error {
	if s.cur == nil {
		return fmt.Errorf("core: Begin before first cycle")
	}
	if err := s.t.begin(s.opts.Recorder != nil); err != nil {
		return err
	}
	s.cu = 0
	return nil
}

// Abort implements Scheme.
func (s *mvCache) Abort() { s.t.reset(); s.cu = 0 }

// NewCycle implements Scheme.
//
//lint:hotpath runs once per client per broadcast cycle
func (s *mvCache) NewCycle(b *broadcast.Bcast) error {
	if s.cur != nil {
		if b.Cycle <= s.cur.Cycle {
			return nil // duplicate or late frame: already processed
		}
		if b.Cycle != s.cur.Cycle+1 {
			// Undeclared gap: downgrade the lost cycles to misses.
			if err := missRange(s, s.cur.Cycle+1, b.Cycle); err != nil {
				return err
			}
		}
	}
	s.prev, s.cur = s.cur, b
	// Autoprefetch invalidated current pages with the values from the
	// previous cycle, then apply this cycle's report (demoting displaced
	// versions into the old partition).
	if s.prev != nil {
		s.invScratch = s.multi.Current().AppendInvalidItems(s.invScratch[:0])
		for _, item := range s.invScratch {
			if v, err := s.prev.ReadCurrent(item); err == nil {
				s.multi.Put(item, v)
			} else {
				s.multi.Current().Remove(item)
			}
		}
	}
	s.view.load(b, s.opts.BucketGranularity, s.opts.ForceLocalIndex)
	s.invCycle = b.Cycle
	s.view.each(len(b.Entries), s.invalidate)
	if s.t.active && s.t.doomed == nil && s.cu == 0 {
		// Sorted readset walk: the degradation event names the first
		// invalidated item, which must not depend on map-iteration order.
		s.keyScratch = det.AppendSortedKeys(s.keyScratch[:0], s.t.readset)
		for _, item := range s.keyScratch {
			if s.view.invalidates(item) {
				recordInvHit(s.opts.Recorder, b.Cycle, item, "degraded")
				s.cu = b.Cycle
				break
			}
		}
	}
	return nil
}

// MissCycle implements Scheme. A missed invalidation report aborts the
// active transaction and empties the current partition; old versions keep
// their validity intervals (which remain true regardless of the gap) per
// the §5.2.2 observation that version caching improves disconnection
// tolerance.
func (s *mvCache) MissCycle(c model.Cycle) error {
	if s.t.active && s.t.doomed == nil {
		s.t.doomed = abortErr("missed cycle %v (invalidation report lost)", c)
	}
	s.multi.FlushCurrent()
	s.cur = nil
	return nil
}

// ServeLocal implements Scheme.
func (s *mvCache) ServeLocal(item model.ItemID) (Read, bool, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, false, err
	}
	if s.cu == 0 {
		if v, ok := s.multi.GetCurrent(item); ok {
			return s.deliver(item, v, SourceCache, 0), true, nil
		}
		return Read{}, false, nil
	}
	// Degraded: §4.2 read rule — the version current at cu-1, from cache
	// only ("if such a version is found in cache, then it is read from
	// the cache, otherwise the transaction is aborted").
	if v, ok := s.multi.GetAtOrBefore(item, s.cu-1); ok {
		return s.deliver(item, v, SourceCache, 0), true, nil
	}
	if s.opts.AllowChannelOldReads {
		if v, err := s.cur.ReadCurrent(item); err == nil && v.Cycle < s.cu {
			return Read{}, false, nil // channel path will serve it
		}
	}
	s.t.doomed = abortErr("%v has no cached version current at %v (multiversion cache miss)", item, s.cu-1)
	return Read{}, false, s.t.doomed
}

// ServeChannel implements Scheme.
func (s *mvCache) ServeChannel(item model.ItemID, pos int) (Read, int, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, 0, err
	}
	if s.cur.Position(item) < 0 {
		if s.cur.InDatabase(item) {
			// Not in this interval's chunk (§7 h-interval organization);
			// the item comes around in a later becast.
			return Read{}, 0, ErrNextCycle
		}
		return Read{}, 0, fmt.Errorf("core: %v not in the database", item)
	}
	slot := s.cur.NextPosition(item, pos)
	if slot < 0 {
		return Read{}, 0, ErrNextCycle
	}
	v, err := s.cur.ReadCurrent(item)
	if err != nil {
		return Read{}, 0, err
	}
	if s.cu != 0 {
		if !s.opts.AllowChannelOldReads || v.Cycle >= s.cu {
			s.t.doomed = abortErr("%v must come from cache for a degraded transaction (cu=%v)", item, s.cu)
			return Read{}, 0, s.t.doomed
		}
		return s.deliver(item, v, SourceBroadcast, slot), slot, nil
	}
	s.multi.Put(item, v)
	return s.deliver(item, v, SourceBroadcast, slot), slot, nil
}

func (s *mvCache) deliver(item model.ItemID, v model.Version, src ReadSource, slot int) Read {
	ro := model.ReadObservation{Item: item, Value: v.Value, Version: v.Cycle, Writer: v.Writer}
	s.t.record(ro, s.cur)
	recordRead(s.opts.Recorder, s.cur.Cycle, slot, item, v, src)
	return Read{Obs: ro, Source: src}
}

// Commit implements Scheme. Theorem 5: a degraded transaction's readset
// corresponds to the state broadcast at cu-1; an undisturbed one reads the
// current state.
func (s *mvCache) Commit() (CommitInfo, error) {
	if err := s.t.checkServable(); err != nil {
		s.t.reset()
		return CommitInfo{}, err
	}
	ser := s.cur.Cycle
	if s.cu != 0 {
		ser = s.cu - 1
	}
	start := s.t.start
	if start == 0 {
		start = s.cur.Cycle
	}
	info := CommitInfo{
		Reads:              s.t.reads,
		StartCycle:         start,
		CommitCycle:        s.cur.Cycle,
		SerializationCycle: ser,
	}
	s.t.emitStaleness(s.opts.Recorder, s.Name(), s.cur.Cycle)
	s.t.reset()
	s.cu = 0
	return info, nil
}
