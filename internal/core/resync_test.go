package core

import (
	"testing"

	"bpush/internal/model"
)

func TestResyncKeepsTxnWhenReadsetUntouched(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, ResyncOnReconnect: true})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle(7) // gap updates an unrelated item
	h.skipCycle()
	h.resume()
	h.mustRead(5)
	h.mustCommit()
}

func TestResyncAbortsWhenReadsetUpdatedDuringGap(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, ResyncOnReconnect: true})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle(3) // the read item changes while disconnected
	h.resume()
	h.wantAbort(5)
}

func TestResyncRefreshesCacheFromAir(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, CacheSize: 10, ResyncOnReconnect: true})
	h.mustBegin()
	h.mustRead(3)
	h.mustCommit()
	h.skipCycle(3) // cached page goes stale during the gap
	h.resume()
	h.mustBegin()
	r := h.mustRead(3)
	if r.Obs.Value != h.currentValue(3) {
		t.Errorf("post-resync read = %d, want refreshed value %d", r.Obs.Value, h.currentValue(3))
	}
	h.mustCommit()
}

func TestResyncVersionedMarksConservatively(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10, ResyncOnReconnect: true})
	// Seed cache with item 5 at cycle 1.
	h.mustBegin()
	h.mustRead(5)
	h.mustCommit()

	h.mustBegin()
	h.mustRead(3)
	h.skipCycle(3) // readset item updated during the gap -> marked
	h.resume()
	// Item 5's on-air version is still cycle 1 < marked: readable.
	r := h.mustRead(5)
	if r.Obs.Version > 1 {
		t.Errorf("marked read version %v, want the cycle-1 value", r.Obs.Version)
	}
	info := h.mustCommit()
	// lastHeard = 1, so marked = 2 and the serialization state is 1.
	if info.SerializationCycle != 1 {
		t.Errorf("serialization = %v, want 1", info.SerializationCycle)
	}
}

func TestResyncVersionedRejectsGapUpdatedItems(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindVCache, CacheSize: 10, ResyncOnReconnect: true})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle(3, 7) // both the readset and item 7 updated during the gap
	h.resume()
	// Item 7's new version postdates the conservative mark: no cached
	// old version exists, so the transaction dies.
	h.wantAbort(7)
}

func TestResyncMultipleGaps(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindInvOnly, ResyncOnReconnect: true})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle()
	h.skipCycle(8)
	h.resume()
	h.mustRead(5)
	h.skipCycle()
	h.resume()
	h.mustRead(6)
	h.mustCommit()
}

func TestResyncOracleUnderChurn(t *testing.T) {
	// Interleave gaps and commits under steady updates; the harness
	// oracle validates every committed readset against the archived
	// serialization state.
	h := newHarness(t, 20, 1, Options{Kind: KindVCache, CacheSize: 20, ResyncOnReconnect: true})
	for q := 0; q < 30; q++ {
		h.mustBegin()
		items := []int{q%20 + 1, (q*7)%20 + 1, (q*3)%20 + 1}
		aborted := false
		for i, it := range items {
			if i > 0 && it == items[0] || i == 2 && it == items[1] {
				continue // distinct items only
			}
			if _, err := h.read(itemID(it)); err != nil {
				aborted = true
				break
			}
			switch q % 3 {
			case 0:
				h.cycle(itemID((q*5)%20 + 1))
			case 1:
				h.skipCycle(itemID((q*11)%20 + 1))
				h.resume()
			}
		}
		if aborted {
			h.scheme.Abort()
			continue
		}
		h.mustCommit()
	}
}

func itemID(i int) model.ItemID { return model.ItemID(i) }
