package core

import (
	"fmt"

	"bpush/internal/broadcast"
	"bpush/internal/cache"
	"bpush/internal/det"
	"bpush/internal/model"
)

// invOnly implements the invalidation-only method (§3.1) and, when
// versioned is set, the invalidation-only-with-versioned-cache method
// (§4.1).
//
// Invalidation-only: the client tunes in at the beginning of each becast
// and reads the invalidation report; the active transaction aborts if any
// item it has read appears there (Theorem 1: committed readsets equal the
// database state of the commit cycle). With a plain cache, reads are first
// served from non-invalidated cache pages.
//
// Versioned cache: instead of aborting when a read item is first
// invalidated at cycle u, the transaction is "marked" and continues as long
// as every further read finds a cache entry whose version predates u
// (Theorem 4: the readset equals the state of cycle u-1).
type invOnly struct {
	opts      Options
	versioned bool

	cur    *broadcast.Bcast
	prev   *broadcast.Bcast
	cache  *cache.Cache // nil when cacheless
	t      txn
	view   cycleView   // this cycle's report view (shared index or local scratch)
	marked model.Cycle // u: cycle of the first readset invalidation (0 = fresh)

	// invalidate is the per-cycle cache-invalidation callback, built
	// once at construction so NewCycle allocates no closure.
	invalidate func(model.ItemID)
	// keyScratch is the sorted-readset-walk scratch, reused per cycle.
	keyScratch []model.ItemID

	// Reconnection-resync state (Options.ResyncOnReconnect).
	pendingResync bool
	lastHeard     model.Cycle
}

var _ Scheme = (*invOnly)(nil)

func newInvOnly(opts Options, versioned bool) (*invOnly, error) {
	s := &invOnly{opts: opts, versioned: versioned}
	if versioned && opts.CacheSize == 0 {
		return nil, fmt.Errorf("core: %v requires a cache", opts.Kind)
	}
	if opts.CacheSize > 0 {
		c, err := cache.New(opts.CacheSize)
		if err != nil {
			return nil, err
		}
		s.cache = c
		s.invalidate = func(item model.ItemID) { s.cache.Invalidate(item) }
	}
	return s, nil
}

// Name implements Scheme.
func (s *invOnly) Name() string {
	if s.versioned {
		return "inv-only+vcache"
	}
	if s.cache != nil {
		return "inv-only+cache"
	}
	return "inv-only"
}

// Kind implements Scheme.
func (s *invOnly) Kind() Kind {
	if s.versioned {
		return KindVCache
	}
	return KindInvOnly
}

// Active implements Scheme.
func (s *invOnly) Active() bool { return s.t.active }

// Begin implements Scheme.
func (s *invOnly) Begin() error {
	if s.cur == nil {
		return fmt.Errorf("core: Begin before first cycle")
	}
	if err := s.t.begin(s.opts.Recorder != nil); err != nil {
		return err
	}
	s.marked = 0
	return nil
}

// Abort implements Scheme.
func (s *invOnly) Abort() { s.t.reset(); s.marked = 0 }

// NewCycle implements Scheme.
//
//lint:hotpath runs once per client per broadcast cycle
func (s *invOnly) NewCycle(b *broadcast.Bcast) error {
	if s.cur != nil {
		if b.Cycle <= s.cur.Cycle {
			return nil // duplicate or late frame: already processed
		}
		if b.Cycle != s.cur.Cycle+1 && !s.pendingResync {
			// Undeclared gap: downgrade the lost cycles to misses.
			if err := missRange(s, s.cur.Cycle+1, b.Cycle); err != nil {
				return err
			}
		}
	}
	if s.pendingResync {
		s.resync(b)
		s.prev, s.cur = nil, b // pre-gap becast must not feed autoprefetch
	} else {
		s.prev, s.cur = s.cur, b
		autoprefetch(s.cache, s.prev)
	}
	s.view.load(b, s.opts.BucketGranularity, s.opts.ForceLocalIndex)
	if s.cache != nil {
		s.view.each(len(b.Entries), s.invalidate)
	}
	if s.t.active && s.t.doomed == nil {
		// Sorted readset walk: the abort reason names the first invalidated
		// item, which must not depend on map-iteration order.
		s.keyScratch = det.AppendSortedKeys(s.keyScratch[:0], s.t.readset)
		for _, item := range s.keyScratch {
			if s.view.invalidates(item) {
				if s.versioned {
					recordInvHit(s.opts.Recorder, b.Cycle, item, "marked")
					if s.marked == 0 {
						s.marked = b.Cycle
					}
				} else {
					recordInvHit(s.opts.Recorder, b.Cycle, item, "fatal")
					s.t.doomed = abortErr("%v invalidated at %v (invalidation-only)", item, b.Cycle)
				}
				break
			}
		}
	}
	return nil
}

// MissCycle implements Scheme. Without the per-cycle report the client can
// no longer certify any active transaction and cached pages may be stale,
// so by default the transaction aborts and the cache is flushed. With
// ResyncOnReconnect the decision is deferred to the next heard becast,
// whose on-air version numbers tell exactly what changed during the gap.
func (s *invOnly) MissCycle(c model.Cycle) error {
	if s.opts.ResyncOnReconnect {
		if !s.pendingResync {
			s.pendingResync = true
			if s.cur != nil {
				s.lastHeard = s.cur.Cycle
			}
		}
		return nil
	}
	if s.t.active && s.t.doomed == nil {
		s.t.doomed = abortErr("missed cycle %v (invalidation report lost)", c)
	}
	flushCache(s.cache)
	s.cur = nil // force resync via next NewCycle
	return nil
}

// resync recovers from a connectivity gap using the version numbers
// carried by the data segment: the cache is refreshed wholesale from the
// becast (one full listening pass), and the active transaction survives
// iff none of its read items was updated during the gap — an item's
// current version cycle exceeding the last becast heard is exactly the
// w-window invalidation signal of §5.2.2, with w unbounded.
func (s *invOnly) resync(b *broadcast.Bcast) {
	s.pendingResync = false
	if s.cache != nil {
		for _, item := range s.cache.Items() {
			if v, err := b.ReadCurrent(item); err == nil {
				s.cache.Put(item, v)
			} else {
				s.cache.Remove(item)
			}
		}
	}
	if s.t.active && s.t.doomed == nil && s.lastHeard > 0 {
		// Sorted for the same reason as NewCycle: deterministic abort
		// attribution.
		for _, item := range det.SortedKeys(s.t.readset) {
			v, err := b.ReadCurrent(item)
			if err != nil {
				// Chunked (h-interval) becast without the item: its gap
				// history cannot be verified now; abort conservatively.
				recordInvHit(s.opts.Recorder, b.Cycle, item, "resync-unverifiable")
				s.t.doomed = abortErr("%v not on this becast; gap history unverifiable", item)
				break
			}
			if v.Cycle > s.lastHeard {
				if s.versioned {
					recordInvHit(s.opts.Recorder, b.Cycle, item, "resync-marked")
					// The first invalidation happened at some missed
					// cycle; the earliest possibility is the most
					// conservative marking (Theorem 4 still applies:
					// everything read so far was current through
					// lastHeard).
					if s.marked == 0 || s.lastHeard+1 < s.marked {
						s.marked = s.lastHeard + 1
					}
				} else {
					recordInvHit(s.opts.Recorder, b.Cycle, item, "resync-fatal")
					s.t.doomed = abortErr("%v updated during connectivity gap (version %v > last heard %v)",
						item, v.Cycle, s.lastHeard)
				}
				break
			}
		}
	}
	s.lastHeard = 0
}

// ServeLocal implements Scheme.
func (s *invOnly) ServeLocal(item model.ItemID) (Read, bool, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, false, err
	}
	if s.cache == nil {
		return Read{}, false, nil
	}
	if s.versioned && s.marked != 0 {
		return s.serveMarked(item)
	}
	v, ok := s.cache.Get(item)
	if !ok {
		return Read{}, false, nil
	}
	return s.deliver(item, v, SourceCache, 0), true, nil
}

// serveMarked serves a read of a marked transaction (§4.1): only versions
// strictly older than the marking cycle u are acceptable, whether the page
// is still valid or already invalidated-but-not-yet-autoprefetched.
func (s *invOnly) serveMarked(item model.ItemID) (Read, bool, error) {
	if e, ok := s.cache.Peek(item); ok && e.Version.Cycle < s.marked {
		return s.deliver(item, e.Version, SourceCache, 0), true, nil
	}
	if s.opts.AllowChannelOldReads {
		if v, err := s.cur.ReadCurrent(item); err == nil && v.Cycle < s.marked {
			// Old enough on air; let the channel path serve it.
			return Read{}, false, nil
		}
	}
	s.t.doomed = abortErr("%v has no cached version older than %v (versioned cache exhausted)", item, s.marked)
	return Read{}, false, s.t.doomed
}

// ServeChannel implements Scheme.
func (s *invOnly) ServeChannel(item model.ItemID, pos int) (Read, int, error) {
	if err := s.t.checkServable(); err != nil {
		return Read{}, 0, err
	}
	if s.cur.Position(item) < 0 {
		if s.cur.InDatabase(item) {
			// Not in this interval's chunk (§7 h-interval organization);
			// the item comes around in a later becast.
			return Read{}, 0, ErrNextCycle
		}
		return Read{}, 0, fmt.Errorf("core: %v not in the database", item)
	}
	slot := s.cur.NextPosition(item, pos)
	if slot < 0 {
		return Read{}, 0, ErrNextCycle
	}
	v, err := s.cur.ReadCurrent(item)
	if err != nil {
		return Read{}, 0, err
	}
	if s.versioned && s.marked != 0 && v.Cycle >= s.marked {
		s.t.doomed = abortErr("%v current version %v too new for marked transaction (u=%v)", item, v.Cycle, s.marked)
		return Read{}, 0, s.t.doomed
	}
	if s.cache != nil && (s.marked == 0 || v.Cycle < s.marked) {
		s.cache.Put(item, v)
	}
	return s.deliver(item, v, SourceBroadcast, slot), slot, nil
}

func (s *invOnly) deliver(item model.ItemID, v model.Version, src ReadSource, slot int) Read {
	ro := model.ReadObservation{Item: item, Value: v.Value, Version: v.Cycle, Writer: v.Writer}
	s.t.record(ro, s.cur)
	recordRead(s.opts.Recorder, s.cur.Cycle, slot, item, v, src)
	return Read{Obs: ro, Source: src}
}

// Commit implements Scheme.
func (s *invOnly) Commit() (CommitInfo, error) {
	if err := s.t.checkServable(); err != nil {
		s.t.reset()
		return CommitInfo{}, err
	}
	ser := s.cur.Cycle // Theorem 1: state of the commit cycle
	if s.versioned && s.marked != 0 {
		ser = s.marked - 1 // Theorem 4: state before the first invalidation
	}
	info := CommitInfo{
		Reads:              s.t.reads,
		StartCycle:         s.t.start,
		CommitCycle:        s.cur.Cycle,
		SerializationCycle: ser,
	}
	if info.StartCycle == 0 {
		info.StartCycle = s.cur.Cycle
	}
	s.t.emitStaleness(s.opts.Recorder, s.Name(), s.cur.Cycle)
	s.t.reset()
	s.marked = 0
	return info, nil
}

// autoprefetch refreshes every invalidated cache page with the value the
// previous becast carried: the paper's invalidation-with-autoprefetch
// policy (§4), modeled as taking effect by the end of the cycle in which
// the new value was re-broadcast.
func autoprefetch(c *cache.Cache, prev *broadcast.Bcast) {
	if c == nil || prev == nil {
		return
	}
	for _, item := range c.InvalidItems() {
		if v, err := prev.ReadCurrent(item); err == nil {
			c.Put(item, v)
		} else {
			c.Remove(item)
		}
	}
}

func flushCache(c *cache.Cache) {
	if c != nil {
		c.Clear()
	}
}
