package core

import (
	"errors"
	"testing"

	"bpush/internal/model"
)

// rwTx builds a server transaction that reads then writes each of writes,
// after reading each of reads.
func rwTx(reads []model.ItemID, writes []model.ItemID) model.ServerTx {
	var ops []model.Op
	for _, r := range reads {
		ops = append(ops, model.Op{Kind: model.OpRead, Item: r})
	}
	for _, w := range writes {
		ops = append(ops, model.Op{Kind: model.OpRead, Item: w}, model.Op{Kind: model.OpWrite, Item: w})
	}
	return model.ServerTx{Ops: ops}
}

func TestSGTAcceptsUnrelatedUpdates(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(8) // unrelated write, no conflict with the readset
	h.mustRead(8)
	h.mustCommit()
}

func TestSGTAcceptsInvalidatedReadsetWithoutCycle(t *testing.T) {
	// The invalidation-only method would abort here; SGT keeps the
	// transaction because reading the OLD value of 3 and the NEW value
	// of 8 is serializable (R before the writer of 3, after the writer
	// of 8, and the two writers do not conflict).
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3})) // overwrites the read item
	h.cycleTxs(rwTx(nil, []model.ItemID{8}))
	h.mustRead(8)
	h.mustCommit()
}

func TestSGTRejectsDirectCycle(t *testing.T) {
	// One server transaction overwrites item 3 (read by R) and also
	// writes item 8. Reading 8 would place R both before it (precedence
	// on 3) and after it (dependency on 8) — a cycle.
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3, 8}))
	h.wantAbort(8)
}

func TestSGTRejectsTransitiveCycle(t *testing.T) {
	// T_a overwrites R's item 3. Next cycle T_c reads 3 (edge T_a->T_c)
	// and writes 8. Reading 8 from T_c closes R -> T_a -> T_c -> R.
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3}))
	h.cycleTxs(rwTx([]model.ItemID{3}, []model.ItemID{8}))
	h.wantAbort(8)
}

func TestSGTAcceptsParallelWriters(t *testing.T) {
	// T_a overwrites 3; an unrelated T_b (no path from T_a) writes 8.
	// Reading 8 from T_b is safe.
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3}), rwTx(nil, []model.ItemID{8}))
	h.mustRead(8)
	h.mustCommit()
}

func TestSGTRereadOfOverwrittenItemRejected(t *testing.T) {
	// Re-reading item 3 after it was overwritten: the new value's writer
	// is exactly the precedence target — an immediate cycle.
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3}))
	h.wantAbort(3)
}

func TestSGTInitialLoadValuesAlwaysAccepted(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3}))
	// Item 9 still carries the initial load (writer tx 0.0): no node, no
	// cycle possible.
	h.mustRead(9)
	h.mustCommit()
}

func TestSGTMissedCycleAborts(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.skipCycle()
	h.resume()
	h.wantAbort(5)
}

func TestSGTTolerateDisconnectsAcceptsOldValues(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT, TolerateDisconnects: true})
	h.mustBegin()
	h.mustRead(3) // heard through cycle 1
	h.skipCycle(5)
	h.resume()
	// Item 9's version predates the gap: acceptable under the §5.2.2
	// version-number enhancement.
	h.mustRead(9)
	// Item 5 was updated during the missed cycle: its version postdates
	// the ceiling and must be rejected.
	h.wantAbort(5)
}

func TestSGTGraphPruning(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	for i := 0; i < 10; i++ {
		h.cycleTxs(rwTx(nil, []model.ItemID{model.ItemID(i%10 + 1)}))
	}
	s, ok := h.scheme.(*sgt)
	if !ok {
		t.Fatal("scheme is not *sgt")
	}
	nodes, _ := s.GraphStats()
	// With no active invalidated transaction, only the current cycle's
	// subgraph may be retained (Lemma 1 space bound).
	if nodes > 1 {
		t.Errorf("retained %d nodes with no active transaction, want <= 1", nodes)
	}
}

func TestSGTGraphRetainedWhileTransactionNeedsIt(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3})) // c_o: subgraphs must be kept
	for i := 0; i < 5; i++ {
		h.cycleTxs(rwTx(nil, []model.ItemID{8}))
	}
	s := h.scheme.(*sgt)
	nodes, _ := s.GraphStats()
	if nodes < 6 {
		t.Errorf("retained %d nodes, want the full window since c_o (6)", nodes)
	}
	// After the transaction ends, the next cycle prunes again.
	h.scheme.Abort()
	h.cycle()
	nodes, _ = s.GraphStats()
	if nodes > 1 {
		t.Errorf("retained %d nodes after abort, want <= 1", nodes)
	}
}

func TestSGTWithCacheRunsCycleTestOnCachedReads(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT, CacheSize: 10})
	// Warm the cache with item 8's future-conflicting value.
	h.mustBegin()
	h.mustRead(3)
	// One transaction overwrites 3 and 8 -> reading 8 (even from cache,
	// after it is refreshed) must still be rejected.
	h.cycleTxs(rwTx(nil, []model.ItemID{3, 8}))
	h.cycle() // autoprefetch refreshes nothing (8 not cached), idle
	h.wantAbort(8)
}

func TestSGTWithCacheServesSafeCachedReads(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT, CacheSize: 10})
	h.mustBegin()
	h.mustRead(8)
	h.mustCommit()
	h.mustBegin()
	r := h.mustRead(8)
	if r.Source != SourceCache {
		t.Errorf("source = %v, want cache", r.Source)
	}
	h.mustCommit()
}

func TestSGTCommitInfoHasNoSerializationCycle(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	info, err := h.scheme.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if info.SerializationCycle != 0 {
		t.Errorf("SerializationCycle = %v, want 0 (graph-certified)", info.SerializationCycle)
	}
	if info.StartCycle != 1 || info.CommitCycle != 1 {
		t.Errorf("start/commit = %v/%v, want 1/1", info.StartCycle, info.CommitCycle)
	}
}

func TestSGTAbortReasonMentionsCycle(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindSGT})
	h.mustBegin()
	h.mustRead(3)
	h.cycleTxs(rwTx(nil, []model.ItemID{3, 8}))
	_, err := h.read(8)
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if ae.Reason == "" {
		t.Error("empty abort reason")
	}
}
