package core

import (
	"errors"
	"strings"
	"testing"
)

// TestLifecycleAcrossAllSchemes exercises the state-machine edges every
// scheme must share: Begin-before-cycle, double Begin, Active, Abort,
// Commit without transaction, and unknown items.
func TestLifecycleAcrossAllSchemes(t *testing.T) {
	variants := []Options{
		{Kind: KindInvOnly},
		{Kind: KindVCache, CacheSize: 8},
		{Kind: KindMVBroadcast},
		{Kind: KindMVCache, CacheSize: 8},
		{Kind: KindSGT},
	}
	for _, opts := range variants {
		opts := opts
		t.Run(opts.Kind.String(), func(t *testing.T) {
			fresh, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Begin(); err == nil {
				t.Error("Begin before first cycle succeeded")
			}

			h := newHarness(t, 10, 2, opts)
			if h.scheme.Active() {
				t.Error("Active() before Begin")
			}
			if _, err := h.scheme.Commit(); !errors.Is(err, ErrNoTxn) {
				t.Errorf("Commit without txn = %v, want ErrNoTxn", err)
			}
			h.mustBegin()
			if !h.scheme.Active() {
				t.Error("Active() false after Begin")
			}
			if err := h.scheme.Begin(); !errors.Is(err, ErrTxnActive) {
				t.Errorf("double Begin = %v, want ErrTxnActive", err)
			}
			h.mustRead(3)
			h.scheme.Abort()
			if h.scheme.Active() {
				t.Error("Active() true after Abort")
			}
			// Abort with no transaction is a no-op.
			h.scheme.Abort()

			// Unknown item: hard error, not an abort.
			h.mustBegin()
			_, err = h.read(99)
			if err == nil || errors.Is(err, ErrAborted) {
				t.Errorf("read of unknown item = %v, want non-abort error", err)
			}
			h.scheme.Abort()

			// A normal query still works after all of the above.
			h.mustBegin()
			h.mustRead(5)
			h.mustCommit()
		})
	}
}

// TestDuplicateCycleIgnoredAcrossSchemes: a replayed becast is a
// delivery-path artifact (duplicated or reordered frame); every scheme
// must discard it without disturbing state — the receive-path hardening
// that lets clients survive jittery channels.
func TestDuplicateCycleIgnoredAcrossSchemes(t *testing.T) {
	for _, opts := range []Options{
		{Kind: KindInvOnly},
		{Kind: KindVCache, CacheSize: 8},
		{Kind: KindMVBroadcast},
		{Kind: KindMVCache, CacheSize: 8},
		{Kind: KindSGT},
	} {
		h := newHarness(t, 5, 1, opts)
		h.cycle(2)
		h.mustBegin()
		h.mustRead(3)
		if err := h.scheme.NewCycle(h.cur); err != nil {
			t.Errorf("%v: replayed cycle not ignored: %v", opts.Kind, err)
		}
		h.mustRead(4)
		h.mustCommit()
	}
}

// TestUndeclaredGapDowngradedToMisses: a becast arriving with a jump in
// the cycle numbering — frames lost without the client knowing — must be
// treated exactly like a disconnection: the gap cycles become misses, so
// the active transaction aborts for the report-dependent schemes instead
// of silently continuing on stale certification state.
func TestUndeclaredGapDowngradedToMisses(t *testing.T) {
	for _, opts := range []Options{
		{Kind: KindInvOnly},
		{Kind: KindVCache, CacheSize: 8},
		{Kind: KindMVCache, CacheSize: 8},
		{Kind: KindSGT},
	} {
		h := newHarness(t, 5, 1, opts)
		h.mustBegin()
		h.mustRead(3)
		// Advance the server two cycles without telling the scheme, then
		// deliver the latest becast: cycle numbering jumps by 2.
		h.skipSilently(3)
		h.skipSilently()
		if err := h.scheme.NewCycle(h.cur); err != nil {
			t.Fatalf("%v: gapped NewCycle errored: %v", opts.Kind, err)
		}
		if _, err := h.read(3); !errors.Is(err, ErrAborted) {
			t.Errorf("%v: read after undeclared gap = %v, want ErrAborted", opts.Kind, err)
		}
		// A fresh query on the resynced scheme works.
		h.scheme.Abort()
		h.mustBegin()
		h.mustRead(5)
		h.mustCommit()
	}
}

func TestKindStrings(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindInvOnly, "inv-only"},
		{KindVCache, "inv-only+vcache"},
		{KindMVBroadcast, "multiversion"},
		{KindMVCache, "mv-cache"},
		{KindSGT, "sgt"},
		{Kind(77), "kind(77)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestReadSourceStrings(t *testing.T) {
	if SourceCache.String() != "cache" || SourceBroadcast.String() != "broadcast" || SourceOverflow.String() != "overflow" {
		t.Error("source strings wrong")
	}
	if !strings.HasPrefix(ReadSource(9).String(), "source(") {
		t.Error("unknown source string wrong")
	}
}

func TestAbortErrorMessage(t *testing.T) {
	err := abortErr("because %d", 7)
	if !strings.Contains(err.Error(), "because 7") {
		t.Errorf("Error() = %q", err.Error())
	}
}

// TestSGTCommitWithoutReads: an empty transaction commits at the current
// cycle with an empty readset.
func TestSGTCommitWithoutReads(t *testing.T) {
	h := newHarness(t, 5, 1, Options{Kind: KindSGT})
	h.mustBegin()
	info, err := h.scheme.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Reads) != 0 {
		t.Errorf("empty txn has %d reads", len(info.Reads))
	}
	if info.StartCycle != h.cur.Cycle {
		t.Errorf("StartCycle = %v, want current %v", info.StartCycle, h.cur.Cycle)
	}
}

// TestMVCacheCommitAfterDoomFails: Commit must surface the latched abort.
func TestMVCacheCommitAfterDoomFails(t *testing.T) {
	h := newHarness(t, 10, 1, Options{Kind: KindMVCache, CacheSize: 8})
	h.mustBegin()
	h.mustRead(3)
	h.cycle(3)
	h.wantAbort(7)
	if _, err := h.scheme.Commit(); !errors.Is(err, ErrAborted) {
		t.Errorf("Commit after doom = %v, want ErrAborted", err)
	}
	if h.scheme.Active() {
		t.Error("scheme still active after failed Commit")
	}
}
