// Package core implements the read-only transaction processing schemes of
// Pitoura & Chrysanthis (ICDCS 1999): the paper's primary contribution.
//
// Each scheme runs entirely at the client. It consumes the control
// information the server puts on each becast (invalidation reports,
// serialization-graph deltas, versions) and decides, read by read, whether
// the active read-only transaction can continue and which version of an
// item it must observe, guaranteeing that the readset of every committed
// transaction is a subset of a consistent database state — without ever
// contacting the server, which is what makes the methods scale to
// arbitrary client populations.
//
// The five methods:
//
//   - KindInvOnly (§3.1): abort when an item already read appears in the
//     per-cycle invalidation report. Serializes at the commit cycle (the
//     most current view).
//   - KindVCache (§4.1): invalidation-only with a versioned cache; a
//     "marked" transaction continues from sufficiently old cache entries
//     and serializes at the cycle before its first invalidation.
//   - KindMVBroadcast (§3.2): the server keeps S versions on air; reads
//     pick the newest version no newer than the transaction's start cycle.
//     Never aborts while the span stays within S.
//   - KindMVCache (§4.2): invalidation reports plus older versions
//     retained in a two-partition client cache.
//   - KindSGT (§3.3): a local copy of the serialization graph, updated
//     from broadcast deltas; a read is accepted only if it closes no
//     cycle.
//
// Every scheme implements Scheme; construct one with New.
package core

import (
	"errors"
	"fmt"

	"bpush/internal/broadcast"
	"bpush/internal/model"
	"bpush/internal/obs"
)

// ErrAborted is returned (possibly wrapped in an *AbortError carrying the
// reason) once the active read-only transaction has been aborted.
var ErrAborted = errors.New("read-only transaction aborted")

// ErrNoTxn is returned by operations that need an active transaction.
var ErrNoTxn = errors.New("no active read-only transaction")

// ErrNextCycle is returned by ServeChannel when the slot carrying the
// needed value has already gone by at the caller's position: access to the
// broadcast is strictly sequential (§2), so the client must wait for the
// next cycle, deliver it via NewCycle, and retry the read there.
var ErrNextCycle = errors.New("value already passed; retry next cycle")

// ErrTxnActive is returned by Begin when a transaction is already active.
var ErrTxnActive = errors.New("read-only transaction already active")

// AbortError carries the reason a transaction aborted. It matches
// ErrAborted under errors.Is.
type AbortError struct {
	Reason string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("read-only transaction aborted: %s", e.Reason)
}

// Is reports that an AbortError is an ErrAborted.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

func abortErr(format string, args ...any) error {
	//lint:allow hotalloc abort construction is the cold path: at most one per doomed transaction
	return &AbortError{Reason: fmt.Sprintf(format, args...)}
}

// ReadSource says where a read was (or must be) served from, which is what
// the client runtime needs to account latency: cache reads are free,
// broadcast reads wait for the item's slot, overflow reads wait for the
// overflow region trailing the data segment.
type ReadSource int

// Read sources.
const (
	SourceCache ReadSource = iota + 1
	SourceBroadcast
	SourceOverflow
)

// String implements fmt.Stringer.
func (s ReadSource) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceBroadcast:
		return "broadcast"
	case SourceOverflow:
		return "overflow"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// obsSource maps the read source onto the trace vocabulary: the data
// segment is "air", client-local state is "cache", and the overflow
// segment's old versions are "version".
func (s ReadSource) obsSource() string {
	switch s {
	case SourceCache:
		return obs.SourceCache
	case SourceOverflow:
		return obs.SourceVersion
	default:
		return obs.SourceAir
	}
}

// recordRead emits the read-served trace event every scheme's deliver
// path shares: the item, where it was served from, the version cycle
// observed, stamped at (cycle, slot).
func recordRead(rec obs.Recorder, cycle model.Cycle, slot int, item model.ItemID, v model.Version, src ReadSource) {
	if rec == nil {
		return
	}
	rec.Record(obs.Event{
		Type:   obs.TypeRead,
		T:      obs.At(cycle, int64(slot)),
		Item:   uint32(item),
		Source: src.obsSource(),
		Ser:    uint64(v.Cycle),
	})
}

// recordInvHit emits the invalidation-hit trace event: an item of the
// active readset was (or may have been) updated, with the reason naming
// what the scheme did about it ("fatal", "marked", "degraded", the
// resync variants, ...).
func recordInvHit(rec obs.Recorder, cycle model.Cycle, item model.ItemID, reason string) {
	if rec == nil {
		return
	}
	rec.Record(obs.Event{
		Type:   obs.TypeInvHit,
		T:      obs.At(cycle, 0),
		Item:   uint32(item),
		Reason: reason,
	})
}

// Read is one served read operation.
type Read struct {
	Obs    model.ReadObservation
	Source ReadSource
}

// CommitInfo describes a committed read-only transaction.
type CommitInfo struct {
	// Reads is the transaction's full observation list, in read order.
	Reads []model.ReadObservation
	// StartCycle is the cycle of the first read.
	StartCycle model.Cycle
	// CommitCycle is the cycle during which the transaction committed.
	CommitCycle model.Cycle
	// SerializationCycle is the becast cycle whose database state the
	// readset corresponds to, per the scheme's correctness theorem. It
	// is 0 for SGT, whose serialization point need not be a broadcast
	// state (§3.3); SGT commits are checked with the graph oracle
	// instead.
	SerializationCycle model.Cycle
}

// Scheme is a client-side read-only transaction processor. Implementations
// are single-client state machines and are not safe for concurrent use.
//
// The client runtime drives a scheme as follows: NewCycle once per becast,
// in cycle order; Begin to open a transaction; then per read operation,
// ServeLocal first (a cache hit costs no channel time) and, if the read
// is not servable locally, ServeChannel, which also reports the
// data-segment slot the client must wait for. When a becast has gone by
// without the client listening, MissCycle tells the scheme so (§5.2.2
// disconnection semantics).
type Scheme interface {
	// Name returns a short stable identifier, e.g. "sgt+cache".
	Name() string
	// Kind returns the scheme kind.
	Kind() Kind
	// NewCycle delivers the next becast. Cycles must arrive in order.
	// The scheme updates its cache/graph state and may internally mark
	// the active transaction aborted; the abort surfaces on the next
	// Serve/Commit call.
	NewCycle(b *broadcast.Bcast) error
	// MissCycle tells the scheme the client did not listen to the becast
	// of the given cycle.
	MissCycle(c model.Cycle) error
	// Begin opens a read-only transaction. At most one may be active.
	Begin() error
	// ServeLocal attempts to serve the read from client-local state
	// (the cache). ok is false when the read needs the channel; an
	// ErrAborted error means the transaction cannot continue.
	ServeLocal(item model.ItemID) (r Read, ok bool, err error)
	// ServeChannel serves the read from the current becast, given the
	// client's position (slot index) on the channel. When the value's
	// slot is still ahead (slot >= pos) the read is performed and the
	// slot returned; when it has already gone by, ErrNextCycle is
	// returned without recording anything, and the client retries after
	// the next NewCycle. Old versions live in overflow slots trailing
	// the data segment.
	ServeChannel(item model.ItemID, pos int) (r Read, slot int, err error)
	// Commit closes the active transaction.
	Commit() (CommitInfo, error)
	// Abort discards the active transaction, if any.
	Abort()
	// Active reports whether a transaction is open (even if already
	// doomed).
	Active() bool
}

// Kind selects a scheme.
type Kind int

// Scheme kinds.
const (
	KindInvOnly Kind = iota + 1
	KindVCache
	KindMVBroadcast
	KindMVCache
	KindSGT
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInvOnly:
		return "inv-only"
	case KindVCache:
		return "inv-only+vcache"
	case KindMVBroadcast:
		return "multiversion"
	case KindMVCache:
		return "mv-cache"
	case KindSGT:
		return "sgt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Options configures a scheme.
type Options struct {
	// Kind selects the method.
	Kind Kind
	// CacheSize is the client cache capacity in pages; 0 disables
	// caching. KindVCache and KindMVCache require a cache.
	CacheSize int
	// OldFraction is the fraction of the cache devoted to old versions
	// in the multiversion cache (§4.2). Defaults to 0.5. Only KindMVCache
	// uses it.
	OldFraction float64
	// BucketGranularity, when > 1, processes invalidation reports at
	// bucket granularity (§7): an updated bucket of that many
	// consecutive items invalidates all its items — conservative but
	// cheaper. Supported by the invalidation-based methods (KindInvOnly,
	// KindVCache, KindMVCache).
	BucketGranularity int
	// AllowChannelOldReads is an extension beyond the paper: a marked
	// VCache/MVCache transaction may also read the *broadcast's* current
	// version when its version cycle is old enough, not only cache
	// entries. Sound by the same argument as Theorem 4; off by default
	// to match the paper.
	AllowChannelOldReads bool
	// TolerateDisconnects enables the §5.2.2 enhancements: MVBroadcast
	// continues through missed cycles (version availability already
	// guards correctness) and SGT accepts reads whose version predates
	// the last becast heard before the gap. Without it, any missed
	// cycle aborts the active transaction for every scheme but
	// MVBroadcast-without-cache.
	TolerateDisconnects bool
	// ForceLocalIndex makes the scheme ignore any shared CycleIndex primed
	// on incoming becasts and rebuild its per-cycle control-info
	// structures locally, as every client did before the shared index
	// existed. The two paths are specified to be observationally
	// identical — same metrics, same traces, byte for byte — which the
	// sim package's differential suite enforces; the flag exists for that
	// suite and for benchmarking the per-client rebuild cost.
	ForceLocalIndex bool
	// ResyncOnReconnect enables the §5.2.2 resynchronization idea for
	// the invalidation-only family (KindInvOnly, KindVCache): after a
	// gap, instead of flushing the cache and aborting, the client scans
	// the on-air version numbers — every entry carries the cycle its
	// value became current — refreshes its cache from the becast, and
	// keeps the active transaction alive unless one of its read items
	// was updated during the gap (its on-air version postdates the last
	// becast heard). This subsumes the paper's w-window invalidation
	// reports: the data segment itself is a full-window report.
	ResyncOnReconnect bool
	// Recorder, when non-nil, receives the scheme's trace events: every
	// read served (with its {air|cache|version} source), invalidation
	// hits against the active readset, and the SGT method's graph edges
	// and cycle tests. Timestamps are virtual (cycle, offset) pairs, so
	// the event stream is a pure function of the becast stream and the
	// reads issued. Nil means not observed (zero overhead beyond a nil
	// check).
	Recorder obs.Recorder
}

// New constructs the scheme selected by opts.
func New(opts Options) (Scheme, error) {
	if opts.CacheSize < 0 {
		return nil, fmt.Errorf("core: negative cache size %d", opts.CacheSize)
	}
	if opts.BucketGranularity < 0 {
		return nil, fmt.Errorf("core: negative bucket granularity %d", opts.BucketGranularity)
	}
	if opts.BucketGranularity > 1 {
		switch opts.Kind {
		case KindInvOnly, KindVCache, KindMVCache:
		default:
			return nil, fmt.Errorf("core: bucket-granularity reports unsupported for %v", opts.Kind)
		}
	}
	switch opts.Kind {
	case KindInvOnly:
		return newInvOnly(opts, false)
	case KindVCache:
		return newInvOnly(opts, true)
	case KindMVBroadcast:
		return newMVBroadcast(opts)
	case KindMVCache:
		return newMVCache(opts)
	case KindSGT:
		return newSGT(opts)
	default:
		return nil, fmt.Errorf("core: unknown scheme kind %v", opts.Kind)
	}
}

// missRange downgrades an undeclared cycle gap to explicit misses: every
// cycle in [from, to) is delivered to the scheme as a MissCycle. This is
// the schemes' own receive-path hardening — a damaged or lost becast that
// reaches NewCycle only as a jump in the cycle numbering is treated
// exactly like a disconnection, feeding the resync/tolerate machinery
// instead of corrupting scheme state.
func missRange(s Scheme, from, to model.Cycle) error {
	for c := from; c < to; c++ {
		if err := s.MissCycle(c); err != nil {
			return err
		}
	}
	return nil
}

// readMeta is the per-read staleness bookkeeping kept only when the
// scheme is observed (Options.Recorder != nil): the cycle the read was
// served at and the newest version cycle the serving becast carried for
// the item (equal to the version read when the becast did not carry the
// item, so the lag degrades to 0 = unknown).
type readMeta struct {
	at  model.Cycle
	cur model.Cycle
}

// txn is the per-transaction state shared by all schemes.
type txn struct {
	active  bool
	track   bool  // keep readMeta for staleness events
	doomed  error // non-nil once the transaction is aborted internally
	start   model.Cycle
	reads   []model.ReadObservation
	readset map[model.ItemID]struct{}
	meta    []readMeta // parallel to reads; only when track
}

func (t *txn) begin(track bool) error {
	if t.active {
		return ErrTxnActive
	}
	// meta never escapes the txn (emitStaleness copies it into events),
	// so its backing array is reusable scratch; reads is handed out via
	// Info.Reads at commit and must stay fresh.
	*t = txn{active: true, track: track, readset: make(map[model.ItemID]struct{}), meta: t.meta[:0]}
	return nil
}

func (t *txn) record(ro model.ReadObservation, b *broadcast.Bcast) {
	if t.start == 0 {
		t.start = b.Cycle
	}
	t.reads = append(t.reads, ro)
	t.readset[ro.Item] = struct{}{}
	if t.track {
		cur := ro.Version
		if v, err := b.ReadCurrent(ro.Item); err == nil {
			cur = v.Cycle
		}
		t.meta = append(t.meta, readMeta{at: b.Cycle, cur: cur})
	}
}

// emitStaleness closes the currency accounting of a committing
// transaction: one TypeStaleness event per read, in read order, stamped
// (commit, read index). See obs.TypeStaleness for the field semantics.
// Schemes call it from Commit after checkServable succeeds and before
// the transaction state is reset; aborted transactions emit nothing.
func (t *txn) emitStaleness(rec obs.Recorder, method string, commit model.Cycle) {
	if rec == nil || !t.track {
		return
	}
	for i, ro := range t.reads {
		m := t.meta[i]
		var lag int64
		if m.cur > ro.Version {
			lag = int64(m.cur - ro.Version)
		}
		rec.Record(obs.Event{
			Type:   obs.TypeStaleness,
			T:      obs.At(commit, int64(i)),
			Method: method,
			Item:   uint32(ro.Item),
			Ser:    uint64(ro.Version),
			Cycles: int(commit - ro.Version),
			Span:   int(commit - m.at),
			N:      lag,
		})
	}
}

func (t *txn) checkServable() error {
	if !t.active {
		return ErrNoTxn
	}
	return t.doomed
}

func (t *txn) has(item model.ItemID) bool {
	_, ok := t.readset[item]
	return ok
}

// reset keeps the meta scratch (see begin) but drops everything else —
// reads escaped through Info.Reads at commit.
func (t *txn) reset() { *t = txn{meta: t.meta[:0]} }

// reportView answers "was this item invalidated this cycle?" under either
// item or bucket granularity (§7). Bucket granularity assumes the flat
// program, where item i occupies data slot i-1. Iteration (each) follows
// the report's ascending item order so cache maintenance is deterministic.
//
// A reportView is the *local* build path: each scheme owns one and
// refills it per cycle, reusing its slices and maps as scratch so the
// rebuild allocates nothing in steady state. Schemes only fall back to it
// when the becast carries no shared CycleIndex (see cycleView).
type reportView struct {
	ordered     []model.ItemID // ascending, from the report
	items       map[model.ItemID]model.TxID
	buckets     map[int]struct{}
	granularity int
	done        map[int]struct{} // each()'s bucket-dedup scratch, reused
}

// reset refills the view from b's invalidation report, reusing the
// previous cycle's allocations.
func (v *reportView) reset(b *broadcast.Bcast, granularity int) {
	v.granularity = granularity
	v.ordered = v.ordered[:0]
	if v.items == nil {
		v.items = make(map[model.ItemID]model.TxID, len(b.Report))
	} else {
		clear(v.items)
	}
	for _, e := range b.Report {
		//lint:allow hotalloc ordered is owner-retained [:0] scratch; capacity amortizes to the report size
		v.ordered = append(v.ordered, e.Item)
		//lint:allow hotalloc items is owner-retained and clear()-reused; buckets amortize to steady state
		v.items[e.Item] = e.FirstWriter
	}
	if granularity > 1 {
		if v.buckets == nil {
			v.buckets = make(map[int]struct{}, len(v.ordered))
		} else {
			clear(v.buckets)
		}
		for _, item := range v.ordered {
			//lint:allow hotalloc buckets is owner-retained and clear()-reused; buckets amortize to steady state
			v.buckets[(int(item)-1)/granularity] = struct{}{}
		}
	}
}

// invalidates reports whether the view invalidates item.
func (v *reportView) invalidates(item model.ItemID) bool {
	if v.granularity > 1 {
		_, ok := v.buckets[(int(item)-1)/v.granularity]
		return ok
	}
	_, ok := v.items[item]
	return ok
}

// each calls fn for every item the view invalidates, in ascending item
// order. Under bucket granularity that is every item sharing a bucket
// with an updated item; db bounds the expansion.
func (v *reportView) each(db int, fn func(model.ItemID)) {
	if v.granularity <= 1 {
		for _, item := range v.ordered {
			fn(item)
		}
		return
	}
	if v.done == nil {
		v.done = make(map[int]struct{}, len(v.buckets))
	} else {
		clear(v.done)
	}
	for _, item := range v.ordered {
		bk := (int(item) - 1) / v.granularity
		if _, dup := v.done[bk]; dup {
			continue
		}
		//lint:allow hotalloc done is owner-retained and clear()-reused dedup scratch
		v.done[bk] = struct{}{}
		lo := bk*v.granularity + 1
		hi := lo + v.granularity - 1
		if hi > db {
			hi = db
		}
		for i := lo; i <= hi; i++ {
			fn(model.ItemID(i))
		}
	}
}

// firstWriter returns the first transaction that wrote item this cycle
// (meaningful at item granularity only).
func (v *reportView) firstWriter(item model.ItemID) (model.TxID, bool) {
	t, ok := v.items[item]
	return t, ok
}

// cycleView is a scheme's window onto the current cycle's control
// information. When the becast carries a shared CycleIndex (primed once by
// the cycle producer) the view consumes it read-only — the whole fleet
// shares one set of derived structures; otherwise (decoded network frames,
// standalone core usage, Options.ForceLocalIndex) it rebuilds the local
// reportView, reusing the scheme's scratch buffers. Both paths answer
// every query identically, in the same deterministic order.
type cycleView struct {
	idx         *broadcast.CycleIndex // shared path; nil means local
	local       reportView
	granularity int
}

// load points the view at b's control information for this cycle.
func (v *cycleView) load(b *broadcast.Bcast, granularity int, forceLocal bool) {
	v.granularity = granularity
	if !forceLocal {
		if idx := b.SharedIndex(); idx != nil {
			v.idx = idx
			return
		}
	}
	v.idx = nil
	v.local.reset(b, granularity)
}

// invalidates reports whether this cycle's report invalidates item.
func (v *cycleView) invalidates(item model.ItemID) bool {
	if v.idx != nil {
		return v.idx.Invalidates(item, v.granularity)
	}
	return v.local.invalidates(item)
}

// each calls fn for every invalidated item, in report order; db bounds
// the bucket expansion (callers pass the data-segment length, which is
// also the bound the shared index precomputed with).
func (v *cycleView) each(db int, fn func(model.ItemID)) {
	if v.idx != nil {
		v.idx.EachInvalidated(v.granularity, fn)
		return
	}
	v.local.each(db, fn)
}

// firstWriter returns the first transaction that wrote item this cycle.
func (v *cycleView) firstWriter(item model.ItemID) (model.TxID, bool) {
	if v.idx != nil {
		return v.idx.FirstWriter(item)
	}
	return v.local.firstWriter(item)
}
