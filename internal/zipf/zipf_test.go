package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "valid", cfg: Config{N: 10, Theta: 0.95}},
		{name: "valid uniform", cfg: Config{N: 10, Theta: 0}},
		{name: "zero N", cfg: Config{N: 0, Theta: 0.95}, wantErr: true},
		{name: "negative N", cfg: Config{N: -1, Theta: 0.95}, wantErr: true},
		{name: "negative theta", cfg: Config{N: 10, Theta: -0.1}, wantErr: true},
		{name: "negative offset", cfg: Config{N: 10, Offset: -1}, wantErr: true},
		{name: "mod smaller than N", cfg: Config{N: 10, Mod: 5}, wantErr: true},
		{name: "mod equal N", cfg: Config{N: 10, Mod: 10}},
		{name: "mod larger than N", cfg: Config{N: 10, Mod: 20}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%+v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.95, 1.5} {
		d := MustNew(Config{N: 100, Theta: theta})
		sum := 0.0
		for i := 1; i <= 100; i++ {
			sum += d.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%g: probabilities sum to %g, want 1", theta, sum)
		}
	}
}

func TestProbMonotoneInRank(t *testing.T) {
	d := MustNew(Config{N: 50, Theta: 0.95})
	for i := 1; i < 50; i++ {
		if d.Prob(i) < d.Prob(i+1) {
			t.Fatalf("Prob(%d)=%g < Prob(%d)=%g; Zipf must be non-increasing in rank",
				i, d.Prob(i), i+1, d.Prob(i+1))
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	d := MustNew(Config{N: 10, Theta: 0})
	for i := 1; i <= 10; i++ {
		if math.Abs(d.Prob(i)-0.1) > 1e-9 {
			t.Errorf("Prob(%d) = %g, want 0.1", i, d.Prob(i))
		}
	}
}

func TestSampleMatchesProb(t *testing.T) {
	d := MustNew(Config{N: 20, Theta: 0.95})
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 20 {
			t.Fatalf("Sample() = %d out of range 1..20", s)
		}
		counts[s]++
	}
	for i := 1; i <= 20; i++ {
		got := float64(counts[i]) / n
		want := d.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P(%d) = %.4f, analytic %.4f", i, got, want)
		}
	}
}

func TestOffsetRotatesHotSpot(t *testing.T) {
	d := MustNew(Config{N: 100, Theta: 0.95, Offset: 40})
	// Rank 1 maps to item 41.
	best, bestP := 0, 0.0
	for i := 1; i <= 100; i++ {
		if p := d.Prob(i); p > bestP {
			best, bestP = i, p
		}
	}
	if best != 41 {
		t.Errorf("hottest item = %d, want 41 with offset 40", best)
	}
}

func TestOffsetSamplesStayInModRange(t *testing.T) {
	d := MustNew(Config{N: 100, Theta: 0.95, Offset: 70})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 100 {
			t.Fatalf("Sample() = %d, want within 1..100 (offset wraps mod N)", s)
		}
	}
}

func TestOffsetProbPreservesMass(t *testing.T) {
	// Rotation is a bijection: the multiset of probabilities is unchanged.
	f := func(off uint8) bool {
		base := MustNew(Config{N: 30, Theta: 0.95})
		rot := MustNew(Config{N: 30, Theta: 0.95, Offset: int(off)})
		sum := 0.0
		for i := 1; i <= 30; i++ {
			sum += rot.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Hot item moved by off mod 30 and kept its mass.
		hot := (int(off))%30 + 1
		return math.Abs(rot.Prob(hot)-base.Prob(1)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProbOutOfRange(t *testing.T) {
	d := MustNew(Config{N: 10, Theta: 0.95, Mod: 20})
	if p := d.Prob(0); p != 0 {
		t.Errorf("Prob(0) = %g, want 0", p)
	}
	if p := d.Prob(21); p != 0 {
		t.Errorf("Prob(21) = %g, want 0", p)
	}
	// Items 11..20 are outside the un-rotated support.
	if p := d.Prob(15); p != 0 {
		t.Errorf("Prob(15) = %g, want 0 (outside N with no offset)", p)
	}
}

func TestOverlapDecreasesWithOffset(t *testing.T) {
	client := MustNew(Config{N: 1000, Theta: 0.95})
	prev := math.Inf(1)
	for _, off := range []int{0, 50, 100, 200, 250} {
		server := MustNew(Config{N: 500, Theta: 0.95, Offset: off})
		ov := client.Overlap(server, 50)
		if ov > prev+1e-9 {
			t.Errorf("overlap at offset %d = %g, exceeds previous %g; expected monotone decrease", off, ov, prev)
		}
		prev = ov
	}
}

func TestOverlapIdentity(t *testing.T) {
	d := MustNew(Config{N: 100, Theta: 0.95})
	full := d.Overlap(d, 100)
	if math.Abs(full-1) > 1e-9 {
		t.Errorf("Overlap(self, N) = %g, want 1", full)
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	d := MustNew(Config{N: 100, Theta: 0.95})
	a := rand.New(rand.NewSource(1))
	b := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if x, y := d.Sample(a), d.Sample(b); x != y {
			t.Fatalf("sample %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config did not panic")
		}
	}()
	MustNew(Config{N: -1})
}

func BenchmarkSample(b *testing.B) {
	d := MustNew(Config{N: 1000, Theta: 0.95})
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
