// Package zipf implements the Zipf access distribution used throughout the
// performance model of Pitoura & Chrysanthis (ICDCS 1999, §5.1): access
// probabilities over a range 1..n proportional to (1/i)^theta, with an
// Offset parameter that rotates the distribution to model disagreement
// between the client read pattern and the server update pattern.
//
// math/rand's Zipf requires s > 1 and a different parameterization, so the
// sampler here is built from an explicit cumulative table with binary
// search, which is exact for any theta >= 0 and fast enough for the ranges
// in the paper (n <= a few thousand).
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a Zipf(theta) distribution over ranks 1..N, optionally rotated by
// Offset within a modulus. It is safe for concurrent use once constructed,
// but sampling requires a caller-provided *rand.Rand (samplers hold no RNG
// state so that simulations stay deterministic under a single seed).
type Dist struct {
	n      int
	theta  float64
	offset int
	mod    int
	cdf    []float64 // cdf[i] = P(rank <= i+1)
}

// Config configures a distribution. The zero value is invalid; use New.
type Config struct {
	// N is the number of ranks (items) the distribution spreads over;
	// samples before offsetting are in 1..N.
	N int
	// Theta is the skew parameter; 0 is uniform, larger is more skewed.
	// The paper uses theta = 0.95.
	Theta float64
	// Offset rotates the sampled rank: the returned item is
	// ((rank-1+Offset) mod Mod) + 1. An offset of k "shifts the update
	// distribution k items making them of less interest to the client"
	// (§5.1). Zero leaves ranks unchanged.
	Offset int
	// Mod is the modulus for offset rotation. Defaults to N when zero.
	// It must be >= N so the rotated support stays within 1..Mod.
	Mod int
}

// New builds a distribution from cfg.
func New(cfg Config) (*Dist, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("zipf: N must be positive, got %d", cfg.N)
	}
	if cfg.Theta < 0 {
		return nil, fmt.Errorf("zipf: theta must be non-negative, got %g", cfg.Theta)
	}
	mod := cfg.Mod
	if mod == 0 {
		mod = cfg.N
	}
	if mod < cfg.N {
		return nil, fmt.Errorf("zipf: modulus %d smaller than range %d", mod, cfg.N)
	}
	if cfg.Offset < 0 {
		return nil, fmt.Errorf("zipf: offset must be non-negative, got %d", cfg.Offset)
	}
	d := &Dist{
		n:      cfg.N,
		theta:  cfg.Theta,
		offset: cfg.Offset % mod,
		mod:    mod,
		cdf:    make([]float64, cfg.N),
	}
	sum := 0.0
	for i := 1; i <= cfg.N; i++ {
		sum += 1.0 / math.Pow(float64(i), cfg.Theta)
		d.cdf[i-1] = sum
	}
	for i := range d.cdf {
		d.cdf[i] /= sum
	}
	// Guard against floating-point drift so the final bucket always wins.
	d.cdf[cfg.N-1] = 1.0
	return d, nil
}

// MustNew is New for configurations known to be valid at compile time; it
// panics on error and exists for tests and examples.
func MustNew(cfg Config) *Dist {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of ranks.
func (d *Dist) N() int { return d.n }

// Theta returns the skew parameter.
func (d *Dist) Theta() float64 { return d.theta }

// Sample draws one item in 1..Mod using rng.
func (d *Dist) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	rank := sort.SearchFloat64s(d.cdf, u) + 1
	if rank > d.n {
		rank = d.n
	}
	return (rank-1+d.offset)%d.mod + 1
}

// Prob returns the probability that Sample returns item (1-based, in
// 1..Mod). Items outside the rotated support have probability 0.
func (d *Dist) Prob(item int) float64 {
	if item < 1 || item > d.mod {
		return 0
	}
	// Invert the rotation to recover the rank.
	rank := (item-1-d.offset%d.mod+d.mod)%d.mod + 1
	if rank > d.n {
		return 0
	}
	if rank == 1 {
		return d.cdf[0]
	}
	return d.cdf[rank-1] - d.cdf[rank-2]
}

// Overlap computes the total probability mass this distribution places on
// the top-k items of other, a measure of the read/update pattern overlap
// discussed around Figure 5 (right).
func (d *Dist) Overlap(other *Dist, k int) float64 {
	type ip struct {
		item int
		p    float64
	}
	tops := make([]ip, 0, other.mod)
	for item := 1; item <= other.mod; item++ {
		if p := other.Prob(item); p > 0 {
			tops = append(tops, ip{item, p})
		}
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].p != tops[j].p {
			return tops[i].p > tops[j].p
		}
		return tops[i].item < tops[j].item
	})
	if k > len(tops) {
		k = len(tops)
	}
	mass := 0.0
	for _, t := range tops[:k] {
		mass += d.Prob(t.item)
	}
	return mass
}
