package sim

import (
	"testing"

	"bpush/internal/core"
	"bpush/internal/model"
)

// BenchmarkActiveTxnConsumption measures the steady-state per-cycle cost
// of a client holding a read-only transaction open across the whole
// cycle log — the paths the hotalloc analyzer polices from the NewCycle
// entry points: the per-cycle cache-invalidation callback, the sorted
// readset walk, and the autoprefetch scratch. The schemes here keep the
// walk alive for the full log (vcache marks instead of aborting, SGT
// records precedence targets), so every cycle pays the full path.
// Summarized in BENCH_hotalloc.json.
func BenchmarkActiveTxnConsumption(b *testing.B) {
	const cycles = 200
	schemes := []struct {
		name string
		opts core.Options
	}{
		{"inv-only-vcache", core.Options{Kind: core.KindVCache, CacheSize: 100}},
		{"mv-cache", core.Options{Kind: core.KindMVCache, CacheSize: 100}},
		{"sgt", core.Options{Kind: core.KindSGT, CacheSize: 100}},
	}
	log := benchCycleLog(b, cycles, true)
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.New(sc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.NewCycle(log[0]); err != nil {
					b.Fatal(err)
				}
				if err := s.Begin(); err != nil {
					b.Fatal(err)
				}
				// Give the transaction a readset: the first items the
				// opening becast serves. Items the chunking withholds are
				// skipped; the walk only needs a non-empty set.
				reads := 0
				for item := model.ItemID(0); item < 64 && reads < 8; item++ {
					if _, _, err := s.ServeChannel(item, 0); err == nil {
						reads++
					}
				}
				if reads == 0 {
					b.Fatal("no reads served; the readset walk is not exercised")
				}
				for _, bc := range log[1:] {
					if err := s.NewCycle(bc); err != nil {
						b.Fatal(err)
					}
				}
			}
			total := float64(b.Elapsed().Nanoseconds())
			b.ReportMetric(total/float64(b.N*(cycles-1)), "ns/cycle")
		})
	}
}
