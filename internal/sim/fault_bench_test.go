package sim

import (
	"math/rand"
	"testing"

	"bpush/internal/client"
	"bpush/internal/core"
	"bpush/internal/cyclesource"
	"bpush/internal/fault"
	"bpush/internal/workload"
)

// benchCleanClient drives one client over a pre-built shared source, with
// or without a zero-plan fault injector interposed. The pair of benchmarks
// below measures the cost of merely *attaching* the fault layer on a clean
// channel — the acceptance bar is <2% (see BENCH_fault.json), because
// every simulation now routes through the layer's interface whether or not
// faults are configured.
func benchCleanClient(b *testing.B, src *cyclesource.Source, cfg Config, attach bool) {
	b.Helper()
	ccfg := client.Config{ThinkTime: cfg.ThinkTime}
	scheme, err := core.New(cfg.Scheme)
	if err != nil {
		b.Fatal(err)
	}
	qgen, err := workload.NewQueryGen(workload.ClientConfig{
		ReadRange:   cfg.ReadRange,
		Theta:       cfg.Theta,
		OpsPerQuery: cfg.OpsPerQuery,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	feed := src.NewFeed()
	var cl *client.Client
	if attach {
		inj, err := fault.New(feed, fault.Plan{}, 3)
		if err != nil {
			b.Fatal(err)
		}
		cl, err = client.NewFromEvents(scheme, inj, ccfg)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		cl, err = client.New(scheme, feed, ccfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for q := 0; q < cfg.Queries; q++ {
		if _, err := cl.RunQuery(qgen.Query()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCleanSetup(b *testing.B) (*cyclesource.Source, Config) {
	b.Helper()
	cfg := benchFleetConfig()
	cfg.Queries = 300
	src, err := cfg.NewSource()
	if err != nil {
		b.Fatal(err)
	}
	return src, cfg
}

// BenchmarkCleanRunSeedPath is the baseline: the pre-fault-layer client
// pipeline, a plain feed adapted internally. One untimed pass warms the
// memoized cycle log, so the timed region measures only the consumer.
func BenchmarkCleanRunSeedPath(b *testing.B) {
	src, cfg := benchCleanSetup(b)
	benchCleanClient(b, src, cfg, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCleanClient(b, src, cfg, false)
	}
}

// BenchmarkCleanRunFaultLayerAttached forces a zero-plan Injector between
// the feed and the client: same stream, same queries, plus one interface
// hop per cycle. The plan is zero, so the injector draws no randomness and
// allocates nothing per frame.
func BenchmarkCleanRunFaultLayerAttached(b *testing.B) {
	src, cfg := benchCleanSetup(b)
	benchCleanClient(b, src, cfg, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCleanClient(b, src, cfg, true)
	}
}
