package sim

import (
	"fmt"
	"testing"

	"bpush/internal/broadcast"
	"bpush/internal/core"
)

// benchCycleLog produces one fixed cycle log at the default operating
// point. With primed=true every becast carries the producer's shared
// CycleIndex; with primed=false the becasts are raw and every consumer
// must build its control-info structures locally.
func benchCycleLog(b *testing.B, cycles int, primed bool) []*broadcast.Bcast {
	b.Helper()
	cfg := benchFleetConfig()
	cfg.ForceLocalIndex = !primed
	src, err := cfg.NewSource()
	if err != nil {
		b.Fatal(err)
	}
	log := make([]*broadcast.Bcast, cycles)
	for i := range log {
		if log[i], err = src.Get(i); err != nil {
			b.Fatal(err)
		}
	}
	return log
}

// BenchmarkCycleIndexConsumption isolates the term the shared index
// shrinks: the per-client per-cycle cost of integrating a becast's
// control information (NewCycle across a pre-produced log — production is
// excluded, it is identical in both modes and already measured by
// BenchmarkCycleProduction). "shared" consumes the producer's index;
// "local" rebuilds per client per cycle, which is what every client paid
// before the index existed. Reported as ns/client-cycle; summarized in
// BENCH_sharedindex.json.
func BenchmarkCycleIndexConsumption(b *testing.B) {
	const cycles = 200
	schemes := []struct {
		name string
		opts core.Options
	}{
		{"inv-only", core.Options{Kind: core.KindInvOnly}},
		{"inv-only-bucket", core.Options{Kind: core.KindInvOnly, CacheSize: 100, BucketGranularity: 8}},
		{"sgt", core.Options{Kind: core.KindSGT, CacheSize: 100}},
	}
	for _, sc := range schemes {
		for _, mode := range []struct {
			name       string
			forceLocal bool
		}{{"shared", false}, {"local", true}} {
			for _, clients := range []int{1, 16, 64} {
				name := fmt.Sprintf("%s/%s/clients=%d", sc.name, mode.name, clients)
				b.Run(name, func(b *testing.B) {
					log := benchCycleLog(b, cycles, true)
					opts := sc.opts
					opts.ForceLocalIndex = mode.forceLocal
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for c := 0; c < clients; c++ {
							s, err := core.New(opts)
							if err != nil {
								b.Fatal(err)
							}
							for _, bc := range log {
								if err := s.NewCycle(bc); err != nil {
									b.Fatal(err)
								}
							}
						}
					}
					total := float64(b.Elapsed().Nanoseconds())
					b.ReportMetric(total/float64(b.N*clients*cycles), "ns/client-cycle")
				})
			}
		}
	}
}

// BenchmarkSharedIndexFleet is the end-to-end check: full fleet runs with
// the shared index on (production primes, clients consume) versus fully
// off (production skips priming, every client rebuilds). At 1 client the
// two must be within noise — the producer-side build replaces exactly one
// local build — and the shared mode pulls ahead as clients multiply.
func BenchmarkSharedIndexFleet(b *testing.B) {
	for _, clients := range []int{1, 16, 64} {
		for _, mode := range []struct {
			name       string
			forceLocal bool
		}{{"shared", false}, {"local", true}} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode.name), func(b *testing.B) {
				cfg := benchFleetConfig()
				cfg.ForceLocalIndex = mode.forceLocal
				for i := 0; i < b.N; i++ {
					if _, err := RunFleet(cfg, clients); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPrimeIndex isolates the producer-side cost the shared mode
// adds: deriving one CycleIndex. This is paid once per cycle regardless
// of fleet size — it is the "server-work" side of the trade.
func BenchmarkPrimeIndex(b *testing.B) {
	log := benchCycleLog(b, 200, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc := log[i%len(log)]
		x, err := broadcast.NewCycleIndex(bc)
		if err != nil {
			b.Fatal(err)
		}
		_ = x
	}
}
