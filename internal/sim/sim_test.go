package sim

import (
	"strings"
	"testing"

	"bpush/internal/core"
)

// testConfig returns a small, fast configuration with the oracle on.
func testConfig(kind core.Kind, cacheSize int) Config {
	cfg := DefaultConfig()
	cfg.DBSize = 200
	cfg.UpdateRange = 100
	cfg.ReadRange = 200
	cfg.Updates = 10
	cfg.ServerTx = 5
	cfg.OpsPerQuery = 6
	cfg.Queries = 150
	cfg.Warmup = 20
	cfg.Check = true
	cfg.Scheme = core.Options{Kind: kind, CacheSize: cacheSize}
	if kind == core.KindMVBroadcast {
		cfg.ServerVersions = 6
	}
	return cfg
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DBSize = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero DBSize accepted")
	}
	cfg = DefaultConfig()
	cfg.ReadRange = cfg.DBSize + 1
	if _, err := Run(cfg); err == nil {
		t.Error("ReadRange > DBSize accepted")
	}
	cfg = DefaultConfig()
	cfg.ServerVersions = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero ServerVersions accepted")
	}
	cfg = DefaultConfig()
	cfg.Queries = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero queries accepted")
	}
	cfg = DefaultConfig()
	cfg.OracleWindow = 1
	if _, err := Run(cfg); err == nil {
		t.Error("tiny oracle window accepted")
	}
	cfg = DefaultConfig()
	cfg.Scheme = core.Options{} // invalid kind
	if _, err := Run(cfg); err == nil {
		t.Error("invalid scheme accepted")
	}
}

// TestAllSchemesPassOracle is the package's master test: every scheme, with
// and without cache, runs a substantial simulation with the consistency
// oracle enabled. Any committed query whose readset is not a subset of a
// consistent database state fails the run.
func TestAllSchemesPassOracle(t *testing.T) {
	tests := []struct {
		name  string
		kind  core.Kind
		cache int
	}{
		{"inv-only", core.KindInvOnly, 0},
		{"inv-only+cache", core.KindInvOnly, 30},
		{"vcache", core.KindVCache, 30},
		{"multiversion", core.KindMVBroadcast, 0},
		{"multiversion+cache", core.KindMVBroadcast, 30},
		{"mv-cache", core.KindMVCache, 30},
		{"sgt", core.KindSGT, 0},
		{"sgt+cache", core.KindSGT, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := Run(testConfig(tt.kind, tt.cache))
			if err != nil {
				t.Fatal(err)
			}
			if m.Queries != 150 {
				t.Errorf("measured %d queries, want 150", m.Queries)
			}
			if m.Committed+m.Aborted != m.Queries {
				t.Errorf("committed %d + aborted %d != %d", m.Committed, m.Aborted, m.Queries)
			}
			if m.Committed > 0 && m.OracleChecked == 0 {
				t.Error("oracle never ran despite commits")
			}
			if m.Committed > 0 && m.MeanLatency < 1 {
				t.Errorf("mean latency %.2f < 1 cycle", m.MeanLatency)
			}
		})
	}
}

func TestMVBroadcastAcceptsEverythingWithinSpan(t *testing.T) {
	cfg := testConfig(core.KindMVBroadcast, 0)
	cfg.ServerVersions = 16 // far beyond any query span
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborted != 0 {
		t.Errorf("multiversion broadcast aborted %d queries with S >> span, want 0 (Theorem 2)", m.Aborted)
	}
}

func TestInvOnlyAbortsMoreThanSGT(t *testing.T) {
	inv, err := Run(testConfig(core.KindInvOnly, 0))
	if err != nil {
		t.Fatal(err)
	}
	sgt, err := Run(testConfig(core.KindSGT, 0))
	if err != nil {
		t.Fatal(err)
	}
	if sgt.AbortRate > inv.AbortRate {
		t.Errorf("SGT abort rate %.3f > inv-only %.3f; SGT must accept at least as many (it only aborts on true cycles)",
			sgt.AbortRate, inv.AbortRate)
	}
}

func TestCachingReducesAborts(t *testing.T) {
	noCache, err := Run(testConfig(core.KindInvOnly, 0))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(testConfig(core.KindInvOnly, 50))
	if err != nil {
		t.Fatal(err)
	}
	if cached.AbortRate > noCache.AbortRate+0.02 {
		t.Errorf("cache increased abort rate: %.3f vs %.3f (caching shrinks span and exposure)",
			cached.AbortRate, noCache.AbortRate)
	}
	if cached.CacheHitRate == 0 {
		t.Error("cache hit rate is zero with a warm cache")
	}
}

func TestVCacheAcceptsMoreThanPlainInvOnly(t *testing.T) {
	plain, err := Run(testConfig(core.KindInvOnly, 30))
	if err != nil {
		t.Fatal(err)
	}
	vc, err := Run(testConfig(core.KindVCache, 30))
	if err != nil {
		t.Fatal(err)
	}
	if vc.AcceptRate < plain.AcceptRate {
		t.Errorf("versioned cache accept rate %.3f < plain cached inv-only %.3f",
			vc.AcceptRate, plain.AcceptRate)
	}
}

func TestMVBroadcastAddsLatency(t *testing.T) {
	// Multiversion readers detour to overflow buckets at the end of the
	// becast; no other scheme pays that (Figure 8).
	mv, err := Run(testConfig(core.KindMVBroadcast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mv.OverflowReadRate == 0 {
		t.Skip("workload produced no overflow reads; latency comparison vacuous")
	}
	inv, err := Run(testConfig(core.KindInvOnly, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mv.MeanBcastSlots <= inv.MeanBcastSlots {
		t.Errorf("MV becast %.1f slots <= inv-only %.1f; old versions must lengthen the broadcast",
			mv.MeanBcastSlots, inv.MeanBcastSlots)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := testConfig(core.KindSGT, 20)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Aborted != b.Aborted || a.MeanLatency != b.MeanLatency {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := testConfig(core.KindInvOnly, 0)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed == b.Committed && a.MeanLatency == b.MeanLatency && a.MeanSpan == b.MeanSpan {
		t.Error("different seeds produced identical metrics; suspicious")
	}
}

func TestDisconnectionsHurtInvOnlyNotMV(t *testing.T) {
	inv := testConfig(core.KindInvOnly, 0)
	inv.DisconnectProb = 0.2
	invM, err := Run(inv)
	if err != nil {
		t.Fatal(err)
	}
	invBase, err := Run(testConfig(core.KindInvOnly, 0))
	if err != nil {
		t.Fatal(err)
	}
	if invM.AbortRate <= invBase.AbortRate {
		t.Errorf("disconnections did not raise inv-only abort rate: %.3f <= %.3f",
			invM.AbortRate, invBase.AbortRate)
	}
	mv := testConfig(core.KindMVBroadcast, 0)
	mv.ServerVersions = 16
	mv.DisconnectProb = 0.2
	mvM, err := Run(mv)
	if err != nil {
		t.Fatal(err)
	}
	if mvM.AbortRate > 0.1 {
		t.Errorf("multiversion abort rate %.3f under disconnections, want near 0 (inherent tolerance)", mvM.AbortRate)
	}
}

func TestSGTToleratesDisconnectsExtension(t *testing.T) {
	base := testConfig(core.KindSGT, 0)
	base.DisconnectProb = 0.15
	strict, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tol := base
	tol.Scheme.TolerateDisconnects = true
	relaxed, err := Run(tol)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.AcceptRate < strict.AcceptRate {
		t.Errorf("tolerant SGT accept rate %.3f < strict %.3f", relaxed.AcceptRate, strict.AcceptRate)
	}
}

func TestResyncRecoversDisconnectedCommits(t *testing.T) {
	base := testConfig(core.KindInvOnly, 30)
	base.DisconnectProb = 0.2
	strict, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	resync := base
	resync.Scheme.ResyncOnReconnect = true
	relaxed, err := Run(resync)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.AcceptRate <= strict.AcceptRate {
		t.Errorf("resync accept rate %.3f <= strict %.3f; version-number resynchronization must recover commits",
			relaxed.AcceptRate, strict.AcceptRate)
	}
}

func TestBucketGranularityConservative(t *testing.T) {
	item := testConfig(core.KindInvOnly, 0)
	itemM, err := Run(item)
	if err != nil {
		t.Fatal(err)
	}
	bucket := testConfig(core.KindInvOnly, 0)
	bucket.Scheme.BucketGranularity = 10
	bucketM, err := Run(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if bucketM.AbortRate < itemM.AbortRate {
		t.Errorf("bucket-granularity abort rate %.3f < item-granularity %.3f; coarser reports can only abort more",
			bucketM.AbortRate, itemM.AbortRate)
	}
}

func TestSchemeNameSurfaced(t *testing.T) {
	m, err := Run(testConfig(core.KindSGT, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.SchemeName, "sgt") {
		t.Errorf("SchemeName = %q, want sgt variant", m.SchemeName)
	}
}
