package sim

import (
	"bytes"
	"fmt"
	"testing"

	"bpush/internal/core"
	"bpush/internal/fault"
	"bpush/internal/obs"
)

func traceConfig() Config {
	cfg := DefaultConfig()
	cfg.Queries = 200
	cfg.Warmup = 20
	cfg.Scheme = core.Options{Kind: core.KindInvOnly, CacheSize: 100}
	cfg.DisconnectProb = 0.05
	return cfg
}

// traceRun executes one single-client run and returns the client-side and
// producer-side JSONL streams.
func traceRun(t *testing.T, cfg Config) (client, source []byte) {
	t.Helper()
	var cbuf, sbuf bytes.Buffer
	cw, sw := obs.NewJSONL(&cbuf), obs.NewJSONL(&sbuf)
	cfg.Recorder = cw
	cfg.SourceRecorder = sw
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if cw.Err() != nil || sw.Err() != nil {
		t.Fatalf("trace write errors: %v / %v", cw.Err(), sw.Err())
	}
	return cbuf.Bytes(), sbuf.Bytes()
}

// TestTraceDeterministicBytes is the observability acceptance bar: two runs
// of the same seed must emit byte-identical JSONL traces, on both the
// client and the producer side. Events are virtual-timed (cycle, offset)
// and float-free, so nothing about the host — wallclock, scheduling, map
// order — can leak into the stream.
func TestTraceDeterministicBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"inv-only", func(cfg *Config) {}},
		{"multiversion", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindMVBroadcast}
			cfg.ServerVersions = 3
		}},
		{"sgt", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindSGT, CacheSize: 100}
		}},
		{"faults", func(cfg *Config) {
			cfg.DisconnectProb = 0
			cfg.Fault = fault.Plan{Drop: 0.05, Duplicate: 0.03, Reorder: 0.02}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := traceConfig()
			tc.mod(&cfg)
			c1, s1 := traceRun(t, cfg)
			c2, s2 := traceRun(t, cfg)
			if len(c1) == 0 {
				t.Fatalf("empty client trace")
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("client traces differ across same-seed runs")
			}
			if !bytes.Equal(s1, s2) {
				t.Fatalf("producer traces differ across same-seed runs")
			}
		})
	}
}

// fleetTrace runs a fleet with one JSONL recorder per client and returns
// the streams concatenated in client index order.
func fleetTrace(t *testing.T, cfg Config, clients int) []byte {
	t.Helper()
	bufs := make([]bytes.Buffer, clients)
	recs := make([]*obs.JSONL, clients)
	for i := range recs {
		recs[i] = obs.NewJSONL(&bufs[i])
	}
	// The factory runs on pool workers; it must be safe to call
	// concurrently, which handing out pre-built recorders is.
	cfg.RecorderFor = func(i int) obs.Recorder { return recs[i] }
	if _, err := RunFleet(cfg, clients); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for i := range bufs {
		if recs[i].Err() != nil {
			t.Fatalf("client %d trace error: %v", i, recs[i].Err())
		}
		out.Write(bufs[i].Bytes())
	}
	return out.Bytes()
}

// TestFleetTraceParallelMatchesSerial extends the fleet's
// worker-invariance guarantee to traces: with one recorder per client, a
// parallel fleet produces exactly the bytes a serial one does. This is why
// Config.RecorderFor exists — a single shared sink would interleave client
// streams in pool-scheduling order.
func TestFleetTraceParallelMatchesSerial(t *testing.T) {
	const clients = 6
	cfg := traceConfig()
	cfg.Queries = 60
	cfg.Warmup = 10

	serial := cfg
	serial.Parallel = 1
	parallel := cfg
	parallel.Parallel = 4

	st := fleetTrace(t, serial, clients)
	pt := fleetTrace(t, parallel, clients)
	if len(st) == 0 {
		t.Fatalf("empty fleet trace")
	}
	if !bytes.Equal(st, pt) {
		t.Fatalf("fleet traces differ between serial and parallel execution")
	}
}

// approxEqual compares the float aggregates. The aggregator adds the same
// float64 values in the same order as the simulator's accumulators, so the
// results are bit-identical; the epsilon only guards against a future
// reordering of an algebraically equivalent computation.
func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestAggregatorMatchesMetrics pins the contract that makes traces
// trustworthy: folding a client's event stream through obs.Aggregator
// recovers the same per-client quantities sim.Metrics reports. Warmup is
// zero because the recorder sees every query while Metrics exclude the
// warmup phase.
func TestAggregatorMatchesMetrics(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"inv-only", func(cfg *Config) {}},
		{"vcache", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindVCache, CacheSize: 100}
		}},
		{"multiversion", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindMVBroadcast}
			cfg.ServerVersions = 2
		}},
		{"mvcache", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindMVCache, CacheSize: 100}
		}},
		{"sgt", func(cfg *Config) {
			cfg.Scheme = core.Options{Kind: core.KindSGT, CacheSize: 100}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := traceConfig()
			cfg.Warmup = 0
			cfg.Queries = 250
			tc.mod(&cfg)
			agg := obs.NewAggregator()
			cfg.Recorder = agg
			m, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := agg.Summary()

			if s.Method != m.SchemeName {
				t.Errorf("Method = %q, want %q", s.Method, m.SchemeName)
			}
			ints := []struct {
				name      string
				got, want int
			}{
				{"Queries", s.Queries, m.Queries},
				{"Committed", s.Committed, m.Committed},
				{"Aborted", s.Aborted, m.Aborted},
				{"CyclesMissed", s.CyclesMissed, m.MissedCycles},
			}
			for _, c := range ints {
				if c.got != c.want {
					t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
				}
			}
			floats := []struct {
				name      string
				got, want float64
			}{
				{"AbortRate", s.AbortRate, m.AbortRate},
				{"AcceptRate", s.AcceptRate, m.AcceptRate},
				{"MeanLatency", s.MeanLatency, m.MeanLatency},
				{"MeanLatencySlots", s.MeanLatencySlots, m.MeanLatencySlots},
				{"MeanSpan", s.MeanSpan, m.MeanSpan},
				{"MeanStaleness", s.MeanStaleness, m.MeanStaleness},
				{"MeanReadAge", s.MeanReadAge, m.MeanReadAge},
				{"CacheHitRate", s.CacheHitRate, m.CacheHitRate},
				{"OverflowReadRate", s.OverflowReadRate, m.OverflowReadRate},
			}
			for _, c := range floats {
				if !approxEqual(c.got, c.want) {
					t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
				}
			}
			if m.Aborted == 0 {
				t.Logf("note: no aborts in %s run", tc.name)
			}
		})
	}
}

// TestTraceRoundTripThroughReader closes the loop end to end: a recorded
// run decodes back into events, and re-aggregating the decoded events
// yields the recorded run's Summary. This is the property the
// bpush-inspect trace subcommand relies on.
func TestTraceRoundTripThroughReader(t *testing.T) {
	cfg := traceConfig()
	cfg.Warmup = 0
	cfg.Queries = 100
	var buf bytes.Buffer
	agg := obs.NewAggregator()
	cfg.Recorder = obs.Tee(obs.NewJSONL(&buf), agg)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("no events decoded")
	}
	re := obs.NewAggregator()
	for _, e := range events {
		re.Record(e)
	}
	if fmt.Sprintf("%+v", re.Summary()) != fmt.Sprintf("%+v", agg.Summary()) {
		t.Fatalf("re-aggregated summary differs:\nlive:    %+v\ndecoded: %+v", agg.Summary(), re.Summary())
	}
}
