package sim

import (
	"testing"

	"bpush/internal/core"
)

func intervalConfig(kind core.Kind, cacheSize, intervals int) Config {
	cfg := testConfig(kind, cacheSize)
	cfg.Intervals = intervals
	// testConfig: DBSize 200, ServerTx 5, Updates 10 — make them
	// divisible by the interval counts used here.
	cfg.ServerTx = 10
	cfg.Updates = 10
	return cfg
}

func TestIntervalValidation(t *testing.T) {
	cfg := intervalConfig(core.KindInvOnly, 0, 3) // 3 does not divide 200/10/10
	if _, err := Run(cfg); err == nil {
		t.Error("non-dividing interval count accepted")
	}
	cfg = intervalConfig(core.KindInvOnly, 0, 2)
	cfg.DiskFreq = 2
	cfg.DiskHot = 20
	if _, err := Run(cfg); err == nil {
		t.Error("intervals + broadcast disks accepted")
	}
}

// TestIntervalsPassOracle runs the h-interval organization under the
// consistency oracle for every scheme family.
func TestIntervalsPassOracle(t *testing.T) {
	for _, tt := range []struct {
		name  string
		kind  core.Kind
		cache int
	}{
		{"inv-only", core.KindInvOnly, 0},
		{"inv-only+cache", core.KindInvOnly, 30},
		{"vcache", core.KindVCache, 30},
		{"multiversion", core.KindMVBroadcast, 0},
		{"mv-cache", core.KindMVCache, 30},
		{"sgt", core.KindSGT, 30},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := intervalConfig(tt.kind, tt.cache, 5)
			if tt.kind == core.KindMVBroadcast {
				cfg.ServerVersions = 30 // intervals, i.e. 6 periods
			}
			m, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Committed == 0 {
				t.Error("nothing committed under the interval organization")
			}
			// Each becast carries one chunk: 200/5 = 40 data slots.
			if m.MeanBcastSlots > 60 {
				t.Errorf("becast %.0f slots, want ~40 (one chunk + overflow)", m.MeanBcastSlots)
			}
		})
	}
}

// TestIntervalsImproveCurrency is the point of the §7 extension: more
// frequent reports (and fresher values) shrink the distance between the
// commit and the serialization state when measured in wall-clock slots.
func TestIntervalsImproveCurrency(t *testing.T) {
	whole := intervalConfig(core.KindInvOnly, 0, 1)
	wholeM, err := Run(whole)
	if err != nil {
		t.Fatal(err)
	}
	split := intervalConfig(core.KindInvOnly, 0, 5)
	splitM, err := Run(split)
	if err != nil {
		t.Fatal(err)
	}
	// Staleness is measured in cycles; convert to slots via the becast
	// length so the two organizations are comparable.
	wholeSlots := wholeM.MeanStaleness * wholeM.MeanBcastSlots
	splitSlots := splitM.MeanStaleness * splitM.MeanBcastSlots
	if splitSlots > wholeSlots+20 {
		t.Errorf("interval staleness %.0f slots worse than whole-cycle %.0f", splitSlots, wholeSlots)
	}
}

func TestIntervalsDeterministic(t *testing.T) {
	cfg := intervalConfig(core.KindSGT, 20, 5)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.MeanLatencySlots != b.MeanLatencySlots {
		t.Error("interval simulation not deterministic")
	}
}
