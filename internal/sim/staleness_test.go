package sim

import (
	"bytes"
	"fmt"
	"testing"

	"bpush/internal/core"
	"bpush/internal/model"
	"bpush/internal/obs"
)

// stalenessEvents decodes a JSONL stream and returns its staleness
// events.
func stalenessEvents(t *testing.T, raw []byte) []obs.Event {
	t.Helper()
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out []obs.Event
	for _, e := range events {
		if e.Type == obs.TypeStaleness {
			out = append(out, e)
		}
	}
	return out
}

// TestStalenessTraceDeterminism is the span/staleness half of the
// trace-determinism bar: across seeds and control-info granularities
// (per-item and bucketed), a parallel fleet's trace — including every
// per-read staleness event — is byte-identical to the serial fleet's.
// Staleness events carry virtual time only (cycle, read index), so
// nothing about scheduling can reach them.
func TestStalenessTraceDeterminism(t *testing.T) {
	const clients = 3
	for _, gran := range []struct {
		name   string
		scheme core.Options
	}{
		// Bucket-granularity invalidation reports only exist for the
		// caching schemes (§4.3); multiversion covers the per-item arm.
		{"item", core.Options{Kind: core.KindMVBroadcast}},
		{"bucket", core.Options{Kind: core.KindInvOnly, CacheSize: 100, BucketGranularity: 4}},
	} {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", gran.name, seed), func(t *testing.T) {
				cfg := traceConfig()
				cfg.Queries = 30
				cfg.Warmup = 5
				cfg.Seed = seed
				cfg.Scheme = gran.scheme
				cfg.ServerVersions = 3

				serial := cfg
				serial.Parallel = 1
				parallel := cfg
				parallel.Parallel = 3

				st := fleetTrace(t, serial, clients)
				pt := fleetTrace(t, parallel, clients)
				if !bytes.Equal(st, pt) {
					t.Fatalf("staleness-bearing fleet traces differ between serial and parallel execution")
				}
				if len(stalenessEvents(t, st)) == 0 {
					t.Fatalf("trace carries no staleness events")
				}
			})
		}
	}
}

// TestInvOnlyStalenessAlwaysCurrent pins the §3.1 currency property: an
// invalidation-only client only ever reads values that are current at
// the moment they are served — from the cycle on air, or from a cache
// entry the invalidation report has not killed — so the currency lag of
// every committed read is exactly zero. (Version age may still be
// positive: a current value keeps the cycle stamp of its last writer.)
func TestInvOnlyStalenessAlwaysCurrent(t *testing.T) {
	cfg := traceConfig()
	cfg.Warmup = 0
	cfg.Queries = 150
	var buf bytes.Buffer
	w := obs.NewJSONL(&buf)
	cfg.Recorder = w
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events := stalenessEvents(t, buf.Bytes())
	if len(events) == 0 {
		t.Fatal("no staleness events recorded")
	}
	for _, e := range events {
		if e.Method != "inv-only+cache" {
			t.Fatalf("unexpected method %q", e.Method)
		}
		if e.N != 0 {
			t.Errorf("inv-only read of item %d at cycle %d has currency lag %d, want 0", e.Item, e.T.Cycle, e.N)
		}
	}
}

// TestMVStalenessBoundedByOverflowSpan pins the §3.2 bound: a cacheless
// multiversion client serves every read from the becast on air, so the
// currency lag of a read served at cycle rc cannot exceed that becast's
// overflow span — the distance from rc back to the oldest version it
// carries. The becast stream is a pure function of the config, so the
// test replays it through Config.NewSource and checks every event
// against the per-cycle bound.
func TestMVStalenessBoundedByOverflowSpan(t *testing.T) {
	cfg := traceConfig()
	cfg.Warmup = 0
	cfg.Queries = 200
	cfg.Scheme = core.Options{Kind: core.KindMVBroadcast}
	cfg.ServerVersions = 4
	var buf bytes.Buffer
	w := obs.NewJSONL(&buf)
	cfg.Recorder = w
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events := stalenessEvents(t, buf.Bytes())
	if len(events) == 0 {
		t.Fatal("no staleness events recorded")
	}

	// Replay the identical becast stream and compute, per cycle, the
	// oldest version cycle on air (data segment + overflow segment).
	src, err := cfg.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	var maxCycle model.Cycle
	for _, e := range events {
		if rc := model.Cycle(e.T.Cycle); rc > maxCycle {
			maxCycle = rc
		}
	}
	oldest := map[model.Cycle]model.Cycle{}
	for i := 0; ; i++ {
		b, err := src.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		min := b.Cycle
		for _, en := range b.Entries {
			if en.Version.Cycle < min {
				min = en.Version.Cycle
			}
		}
		for _, ov := range b.Overflow {
			if ov.Version.Cycle < min {
				min = ov.Version.Cycle
			}
		}
		oldest[b.Cycle] = min
		if b.Cycle >= maxCycle {
			break
		}
	}

	sawLag := false
	for _, e := range events {
		rc := model.Cycle(e.T.Cycle) - model.Cycle(e.Span) // the cycle that served the read
		min, ok := oldest[rc]
		if !ok {
			t.Fatalf("staleness event references unknown serving cycle %d", rc)
		}
		if bound := int64(rc - min); e.N > bound {
			t.Errorf("read of item %d served at cycle %d has lag %d beyond the on-air span %d", e.Item, rc, e.N, bound)
		}
		if e.N > 0 {
			sawLag = true
		}
	}
	if !sawLag {
		t.Error("no read with positive lag — the bound was never exercised")
	}
}
