package sim

import (
	"fmt"
	"testing"

	"bpush/internal/core"
)

// benchFleetConfig is the default operating point at a per-client query
// budget small enough for testing.B, oracle off (benchmarks measure the
// pipeline, not the checker).
func benchFleetConfig() Config {
	cfg := DefaultConfig()
	cfg.Queries = 200
	cfg.Warmup = 20
	cfg.Scheme = core.Options{Kind: core.KindSGT, CacheSize: 100}
	return cfg
}

// BenchmarkFleetSerialVsParallel measures the produce-once/consume-many
// pipeline across fleet sizes: "serial" runs the clients one after
// another on a single worker, "parallel" uses one worker per CPU. Both
// share one producer, so the delta is pure consumer-side parallelism;
// results are identical by construction (see
// TestFleetParallelMatchesSerial). Summarized in BENCH_fleet.json.
func BenchmarkFleetSerialVsParallel(b *testing.B) {
	for _, clients := range []int{1, 4, 16, 64} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode.name), func(b *testing.B) {
				cfg := benchFleetConfig()
				cfg.Parallel = mode.workers
				for i := 0; i < b.N; i++ {
					fm, err := RunFleet(cfg, clients)
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(fm.ServerCycles), "server_cycles")
					}
				}
			})
		}
	}
}

// BenchmarkCycleProduction isolates the producer: server commits plus
// becast assembly, no clients. This is the O(server-work) term that the
// shared source pays exactly once per cycle regardless of fleet size.
func BenchmarkCycleProduction(b *testing.B) {
	cfg := benchFleetConfig()
	src, err := cfg.NewSource()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Get(i); err != nil {
			b.Fatal(err)
		}
	}
}
