package sim

import (
	"fmt"
	"reflect"
	"testing"

	"bpush/internal/core"
	"bpush/internal/fault"
)

// chaosConfig shrinks the test configuration further: fault plans force
// extra cycles (missed frames stall queries), so chaos cells run fewer
// queries than the clean-path tests.
func chaosConfig(opts core.Options, plan fault.Plan, seed int64) Config {
	cfg := testConfig(opts.Kind, opts.CacheSize)
	cfg.Scheme = opts
	cfg.Queries = 80
	cfg.Warmup = 10
	cfg.Seed = seed
	cfg.Fault = plan
	cfg.OracleWindow = 1024 // bursts can push serialization cycles far back
	return cfg
}

// TestChaosOracleAcrossSchemesAndPlans is the chaos property suite: every
// scheme, under every shipped fault plan, with the consistency oracle on.
// The property is the paper's correctness claim extended to a hostile
// channel — faults may abort transactions or slow them down, but no
// accepted transaction is ever inconsistent, and no fault surfaces as an
// infrastructure error. Each cell is exercised under two seeds.
func TestChaosOracleAcrossSchemesAndPlans(t *testing.T) {
	variants := []core.Options{
		{Kind: core.KindInvOnly},
		{Kind: core.KindInvOnly, ResyncOnReconnect: true},
		{Kind: core.KindVCache, CacheSize: 40, ResyncOnReconnect: true},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVBroadcast, CacheSize: 40, TolerateDisconnects: true},
		{Kind: core.KindMVCache, CacheSize: 40},
		{Kind: core.KindSGT},
		{Kind: core.KindSGT, TolerateDisconnects: true},
	}
	for name, plan := range fault.Plans() {
		for _, opts := range variants {
			for _, seed := range []int64{1, 99} {
				opts, plan, seed := opts, plan, seed
				label := fmt.Sprintf("%s/%v-res%v-tol%v/seed%d",
					name, opts.Kind, opts.ResyncOnReconnect, opts.TolerateDisconnects, seed)
				t.Run(label, func(t *testing.T) {
					t.Parallel()
					cfg := chaosConfig(opts, plan, seed)
					if opts.Kind == core.KindMVBroadcast {
						cfg.ServerVersions = 6
					}
					m, err := Run(cfg)
					if err != nil {
						t.Fatalf("chaos run failed: %v", err)
					}
					if m.Queries != cfg.Queries {
						t.Errorf("ran %d queries, want %d", m.Queries, cfg.Queries)
					}
					if m.Committed+m.Aborted != m.Queries {
						t.Errorf("committed %d + aborted %d != %d queries",
							m.Committed, m.Aborted, m.Queries)
					}
					if !plan.IsZero() && plan.Duplicate == 0 && plan.Reorder == 0 && m.MissedCycles == 0 {
						t.Errorf("loss plan %s injected no missed cycles over %d cycles", plan, m.Cycles)
					}
				})
			}
		}
	}
}

// TestDropPlanMatchesDisconnectSchedule is the metamorphic check that the
// fault layer strictly subsumes the paper's disconnection model: a
// drop-only plan must reproduce the DisconnectProb schedule byte for byte
// — identical Metrics, not just statistically similar ones — because both
// draw the same decisions from the same seeded RNG.
func TestDropPlanMatchesDisconnectSchedule(t *testing.T) {
	const p = 0.08
	for _, opts := range []core.Options{
		{Kind: core.KindInvOnly},
		{Kind: core.KindVCache, CacheSize: 40},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVCache, CacheSize: 40},
		{Kind: core.KindSGT},
	} {
		t.Run(opts.Kind.String(), func(t *testing.T) {
			disc := testConfig(opts.Kind, opts.CacheSize)
			disc.Scheme = opts
			disc.DisconnectProb = p
			if opts.Kind == core.KindMVBroadcast {
				disc.ServerVersions = 6
			}
			drop := disc
			drop.DisconnectProb = 0
			drop.Fault = fault.Plan{Drop: p}

			mDisc, err := Run(disc)
			if err != nil {
				t.Fatalf("disconnect run: %v", err)
			}
			mDrop, err := Run(drop)
			if err != nil {
				t.Fatalf("drop-plan run: %v", err)
			}
			if !reflect.DeepEqual(mDisc, mDrop) {
				t.Errorf("drop-only plan diverged from DisconnectProb:\n disconnect: %+v\n fault:      %+v",
					mDisc, mDrop)
			}
			if mDisc.MissedCycles == 0 {
				t.Error("schedule injected no misses; the comparison is vacuous")
			}
		})
	}
}

// TestChaosDeterminism pins the replayability contract: the same (seed,
// plan) produces identical Metrics run after run, and fleet results are
// identical whatever the worker count — faults are drawn per client from
// the client's own seed, never from shared state.
func TestChaosDeterminism(t *testing.T) {
	plan := fault.Plans()["chaos"]

	cfg := chaosConfig(core.Options{Kind: core.KindSGT, TolerateDisconnects: true}, plan, 7)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (seed, plan) produced different Metrics:\n first:  %+v\n second: %+v", a, b)
	}

	fleet := chaosConfig(core.Options{Kind: core.KindVCache, CacheSize: 40, ResyncOnReconnect: true}, plan, 11)
	fleet.Queries = 40
	const clients = 6
	fleet.Parallel = 1
	serial, err := RunFleet(fleet, clients)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Parallel = 4
	parallel, err := RunFleet(fleet, clients)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("chaos fleet metrics differ between serial and parallel runs")
	}
	// Clients must not share a fault schedule: with per-client seeds the
	// miss counts should not all be equal... unless the channel is clean.
	allSame := true
	for _, m := range serial.PerClient[1:] {
		if m.MissedCycles != serial.PerClient[0].MissedCycles {
			allSame = false
			break
		}
	}
	if allSame {
		t.Errorf("every client lost exactly %d cycles; fault schedules look shared",
			serial.PerClient[0].MissedCycles)
	}
}
