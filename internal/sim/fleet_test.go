package sim

import (
	"math"
	"reflect"
	"testing"

	"bpush/internal/core"
)

func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(testConfig(core.KindInvOnly, 0), 0); err == nil {
		t.Error("zero fleet accepted")
	}
	if _, err := RunFleet(testConfig(core.KindInvOnly, 0), -2); err == nil {
		t.Error("negative fleet accepted")
	}
}

// TestScalability is the paper's headline property: because read-only
// transactions are processed entirely at the clients, per-client
// performance is independent of the population size. We run fleets of 1,
// 4, and 12 clients over the same broadcast stream and check that the
// across-fleet mean abort rate does not drift with fleet size (each
// client sees the same channel; there is no shared server-side resource
// to contend on).
func TestScalability(t *testing.T) {
	cfg := testConfig(core.KindSGT, 20)
	cfg.Queries = 80
	means := make(map[int]float64)
	for _, k := range []int{1, 4, 12} {
		fm, err := RunFleet(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if fm.Clients != k || len(fm.PerClient) != k {
			t.Fatalf("fleet bookkeeping wrong: %d/%d", fm.Clients, len(fm.PerClient))
		}
		means[k] = fm.MeanAbortRate
	}
	// Workload sampling noise only: the 12-client mean is a tighter
	// estimate of the same per-client distribution the 1-client run
	// sampled. Allow generous sampling tolerance; the failure mode we
	// guard against is systematic degradation with fleet size.
	if diff := math.Abs(means[12] - means[4]); diff > 0.15 {
		t.Errorf("per-client abort rate drifts with fleet size: k=4 %.3f vs k=12 %.3f", means[4], means[12])
	}
}

func TestFleetClientsAreIndependentlySeeded(t *testing.T) {
	cfg := testConfig(core.KindInvOnly, 0)
	cfg.Queries = 60
	fm, err := RunFleet(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for _, m := range fm.PerClient[1:] {
		if m.Committed != fm.PerClient[0].Committed {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("all fleet clients produced identical commit counts; query workloads not independently seeded")
	}
}

// TestFleetParallelMatchesSerial is the determinism regression test for
// the produce-once/consume-many pipeline: for every scheme, a fleet run
// on one worker and a fleet run on eight workers must produce identical
// FleetMetrics — aggregates and every per-client metric — because each
// client's execution is a pure function of its seed and the shared,
// deterministic cycle stream. The oracle stays on, so the shared archive
// is exercised concurrently too (and under -race, raced).
func TestFleetParallelMatchesSerial(t *testing.T) {
	kinds := []struct {
		name  string
		kind  core.Kind
		cache int
	}{
		{"inv-only", core.KindInvOnly, 0},
		{"vcache", core.KindVCache, 20},
		{"multiversion", core.KindMVBroadcast, 0},
		{"mv-cache", core.KindMVCache, 20},
		{"sgt", core.KindSGT, 20},
	}
	for _, tt := range kinds {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig(tt.kind, tt.cache)
			cfg.Queries = 60
			cfg.DisconnectProb = 0.05 // exercise the per-client RNGs too

			serial := cfg
			serial.Parallel = 1
			a, err := RunFleet(serial, 6)
			if err != nil {
				t.Fatal(err)
			}
			par := cfg
			par.Parallel = 8
			b, err := RunFleet(par, 6)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("parallel fleet diverged from serial:\nserial:   %+v\nparallel: %+v", a, b)
				for i := range a.PerClient {
					if !reflect.DeepEqual(a.PerClient[i], b.PerClient[i]) {
						t.Errorf("client %d: serial %+v vs parallel %+v", i, a.PerClient[i], b.PerClient[i])
					}
				}
			}
		})
	}
}

// TestFleetOfOneMatchesRun pins the produce-once refactor's compatibility
// anchor: a fleet of one client must report exactly the metrics of a
// plain Run with the same per-client seed.
func TestFleetOfOneMatchesRun(t *testing.T) {
	cfg := testConfig(core.KindSGT, 20)
	cfg.Queries = 60
	fm, err := RunFleet(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo := cfg
	solo.ClientSeed = cfg.Seed + 1000
	m, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fm.PerClient[0], m) {
		t.Errorf("fleet-of-one client metrics %+v != solo run %+v", fm.PerClient[0], m)
	}
	if fm.ServerCycles != m.Cycles {
		t.Errorf("producer cycles %d != consumer cycles %d for a single client", fm.ServerCycles, m.Cycles)
	}
}

func TestFleetSharesServerStream(t *testing.T) {
	// Every client must observe the same server-side activity: the same
	// becast lengths (deterministic server seed) regardless of its own
	// query stream.
	cfg := testConfig(core.KindMVBroadcast, 0)
	cfg.ServerVersions = 8
	cfg.Queries = 60
	fm, err := RunFleet(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range fm.PerClient {
		if m.MeanBcastSlots == 0 {
			t.Errorf("client %d saw no broadcast", i)
		}
	}
}
