package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bpush/internal/core"
	"bpush/internal/obs"
)

// durPhase1 produces `stop` cycles into cfg.LogDir with no client
// attached — the run that gets killed — and returns its producer trace.
func durPhase1(t *testing.T, cfg Config, stop int) []byte {
	t.Helper()
	var sbuf bytes.Buffer
	sw := obs.NewJSONL(&sbuf)
	cfg.SourceRecorder = sw
	src, err := cfg.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	feed := src.NewFeed()
	for i := 0; i < stop; i++ {
		if _, err := feed.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Err(); err != nil {
		t.Fatal(err)
	}
	return sbuf.Bytes()
}

// durPhase2 reopens cfg.LogDir and runs the full client workload over
// the resumed source, returning metrics plus client and producer traces.
func durPhase2(t *testing.T, cfg Config) (*Metrics, []byte, []byte) {
	t.Helper()
	var cbuf, sbuf bytes.Buffer
	cw, sw := obs.NewJSONL(&cbuf), obs.NewJSONL(&sbuf)
	cfg.Recorder = cw
	cfg.SourceRecorder = sw
	src, err := cfg.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	m, err := runClient(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Err() != nil || sw.Err() != nil {
		t.Fatalf("trace write errors: %v / %v", cw.Err(), sw.Err())
	}
	return m, cbuf.Bytes(), sbuf.Bytes()
}

// assertRestartEquivalent is satellite 1's core check: a run whose
// producer was killed after `stop` cycles and restarted from the durable
// log must be indistinguishable from one that never stopped — equal
// Metrics, byte-identical client trace, and a producer trace that
// concatenates across the restart to the uninterrupted stream.
func assertRestartEquivalent(t *testing.T, cfg Config, stop int) {
	t.Helper()
	um, uc, us := diffRun(t, cfg) // uninterrupted, memory only

	dcfg := cfg
	dcfg.LogDir = t.TempDir()
	dcfg.MemCycles = 8 // bounded window: phase 2 serves the prefix from disk
	dcfg.SnapshotEvery = 10
	trace1 := durPhase1(t, dcfg, stop)
	dm, dc, trace2 := durPhase2(t, dcfg)

	if int(dm.Cycles) <= stop {
		t.Fatalf("client consumed %d cycles; raise Queries or lower stop=%d", dm.Cycles, stop)
	}
	if !reflect.DeepEqual(um, dm) {
		t.Errorf("metrics differ after restart:\nuninterrupted: %+v\nrestarted:     %+v", um, dm)
	}
	if len(dc) == 0 {
		t.Fatal("empty client trace")
	}
	if !bytes.Equal(uc, dc) {
		t.Errorf("client traces differ after restart (%d vs %d bytes)", len(uc), len(dc))
	}
	joined := append(append([]byte(nil), trace1...), trace2...)
	if !bytes.Equal(us, joined) {
		t.Errorf("producer traces do not concatenate to the uninterrupted stream (%d vs %d+%d bytes)",
			len(us), len(trace1), len(trace2))
	}
}

// TestDurabilityRestartEquivalence sweeps the restart differential over
// the eight differential seeds at item and bucket granularity.
func TestDurabilityRestartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed restart differential")
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"item", core.Options{Kind: core.KindVCache, CacheSize: 40}},
		{"bucket", core.Options{Kind: core.KindVCache, CacheSize: 40, BucketGranularity: 8}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, seed := range differentialSeeds {
				cfg := testConfig(v.opts.Kind, v.opts.CacheSize)
				cfg.Scheme = v.opts
				cfg.Seed = seed
				cfg.Queries = 60
				cfg.Warmup = 10
				cfg.Check = false
				assertRestartEquivalent(t, cfg, 25)
				if t.Failed() {
					t.Fatalf("divergence at seed %d", seed)
				}
			}
		})
	}
}

// TestDurabilityRestartEquivalenceFleet extends restart equivalence to a
// fleet: every client of the restarted producer must report exactly the
// metrics and traces of an uninterrupted fleet run.
func TestDurabilityRestartEquivalenceFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet restart differential")
	}
	const clients, stop = 5, 25
	base := testConfig(core.KindSGT, 40)
	base.Queries = 40
	base.Warmup = 5
	base.Check = false
	base.Parallel = 2

	run := func(cfg Config, resumed bool) ([]Metrics, []byte) {
		bufs := make([]bytes.Buffer, clients)
		recs := make([]*obs.JSONL, clients)
		for i := range recs {
			recs[i] = obs.NewJSONL(&bufs[i])
		}
		cfg.RecorderFor = func(i int) obs.Recorder { return recs[i] }
		var fm *FleetMetrics
		var err error
		if resumed {
			src, serr := cfg.NewSource()
			if serr != nil {
				t.Fatal(serr)
			}
			defer func() { _ = src.Close() }()
			if got := src.Produced(); got != stop {
				t.Fatalf("resumed fleet source Produced() = %d, want %d", got, stop)
			}
			fm, err = runFleet(cfg, src, clients)
		} else {
			fm, err = RunFleet(cfg, clients)
		}
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		for i := range bufs {
			if recs[i].Err() != nil {
				t.Fatalf("client %d trace error: %v", i, recs[i].Err())
			}
			fmt.Fprintf(&out, "client %d\n", i)
			out.Write(bufs[i].Bytes())
		}
		perClient := make([]Metrics, len(fm.PerClient))
		for i, m := range fm.PerClient {
			perClient[i] = *m
		}
		return perClient, out.Bytes()
	}

	uM, uT := run(base, false)

	dcfg := base
	dcfg.LogDir = t.TempDir()
	dcfg.MemCycles = 8
	dcfg.SnapshotEvery = 10
	durPhase1(t, dcfg, stop)
	dM, dT := run(dcfg, true)

	if !reflect.DeepEqual(uM, dM) {
		t.Error("fleet metrics differ after restart")
	}
	if len(uT) == 0 {
		t.Fatal("empty fleet trace")
	}
	if !bytes.Equal(uT, dT) {
		t.Error("fleet traces differ after restart")
	}
}

// TestDurabilityOraclePruningInvisible is satellite 3's pinning run: with
// the oracle on, spilling cycles to disk (which prunes archived states
// and logs to the check window) must leave every verdict and counter of
// a client that walks the stream as it is produced unchanged.
func TestDurabilityOraclePruningInvisible(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle pruning differential")
	}
	for _, seed := range differentialSeeds[:4] {
		cfg := testConfig(core.KindSGT, 40)
		cfg.Seed = seed
		cfg.Queries = 60
		cfg.Warmup = 10
		cfg.OracleWindow = 8 // tight, so pruning actually happens

		um, uc, us := diffRun(t, cfg)

		pcfg := cfg
		pcfg.LogDir = t.TempDir()
		pcfg.MemCycles = 8
		pm, pc, ps := diffRun(t, pcfg)

		if um.OracleChecked == 0 {
			t.Fatal("oracle never ran; the pinning run is vacuous")
		}
		if !reflect.DeepEqual(um, pm) {
			t.Fatalf("seed %d: metrics (incl. oracle counters) differ under pruning:\nfull:   %+v\npruned: %+v", seed, um, pm)
		}
		if !bytes.Equal(uc, pc) || !bytes.Equal(us, ps) {
			t.Fatalf("seed %d: traces differ under pruning", seed)
		}
	}
}
