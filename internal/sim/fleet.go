package sim

import (
	"fmt"

	"bpush/internal/cyclesource"
	"bpush/internal/pool"
	"bpush/internal/stats"
)

// FleetMetrics aggregates a multi-client run: the paper's headline claim
// is that the methods are *scalable* — processing happens entirely at the
// clients, so per-client performance is independent of the population
// size. RunFleet makes that structural, not just measured: one producer
// generates every broadcast cycle exactly once and all clients replay the
// shared stream, so fleet cost is O(server-work + clients x client-work).
type FleetMetrics struct {
	Clients   int
	PerClient []*Metrics

	// Across-client aggregates of the per-client metrics.
	MeanAbortRate float64
	StdAbortRate  float64
	MeanLatency   float64
	StdLatency    float64

	// ServerCycles is the number of broadcast cycles the producer
	// assembled — each exactly once, however many clients consumed it.
	// The server-side cost of a cycle is independent of the fleet size,
	// which is the scalability property.
	ServerCycles uint64
}

// RunFleet simulates a population of independent clients over one shared
// broadcast stream. Client i draws its queries (and disconnections) from
// seed cfg.Seed + 1000*(i+1); the server-side cycle stream is produced
// once and replayed to everyone, exactly as a shared broadcast channel
// behaves. Clients run on a bounded worker pool of cfg.Parallel
// goroutines (0 = one per CPU, 1 = serial); per-client results and all
// aggregates are identical regardless of the worker count.
func RunFleet(cfg Config, clients int) (*FleetMetrics, error) {
	src, err := cfg.NewSource()
	if err != nil {
		return nil, err
	}
	defer func() { _ = src.Close() }()
	return runFleet(cfg, src, clients)
}

// runFleet drives the fleet over an injected source — the seam the
// durability differential uses to run a fleet against a producer resumed
// from disk. The caller owns (and closes) the source.
func runFleet(cfg Config, src *cyclesource.Source, clients int) (*FleetMetrics, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("sim: fleet size must be positive, got %d", clients)
	}
	fm := &FleetMetrics{Clients: clients, PerClient: make([]*Metrics, clients)}
	err := pool.For(cfg.Parallel, clients, func(i int) error {
		c := cfg
		c.ClientSeed = cfg.Seed + 1000*int64(i+1)
		if cfg.RecorderFor != nil {
			// One recorder per client: each stream stays private to its
			// (single-threaded) client, so traces do not depend on how the
			// pool interleaves workers. The factory is consumed here; a nil
			// recorder for a client means that client is unobserved.
			c.Recorder = cfg.RecorderFor(i)
			c.RecorderFor = nil
		}
		m, err := runClient(c, src)
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
		fm.PerClient[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in client order after the pool drains so floating-point
	// accumulation order (and thus every aggregate) is deterministic.
	var abort, latency stats.Accumulator
	for _, m := range fm.PerClient {
		abort.Add(m.AbortRate)
		latency.Add(m.MeanLatency)
	}
	fm.MeanAbortRate = abort.Mean()
	fm.StdAbortRate = abort.Std()
	fm.MeanLatency = latency.Mean()
	fm.StdLatency = latency.Std()
	fm.ServerCycles = src.Produced()
	return fm, nil
}
