package sim

import (
	"fmt"

	"bpush/internal/stats"
)

// FleetMetrics aggregates a multi-client run: the paper's headline claim
// is that the methods are *scalable* — processing happens entirely at the
// clients, so per-client performance is independent of the population
// size. RunFleet makes that measurable: every client consumes the same
// broadcast-cycle stream (the server's work does not depend on who is
// listening) with its own query workload and cache/graph state.
type FleetMetrics struct {
	Clients   int
	PerClient []*Metrics

	// Across-client aggregates of the per-client metrics.
	MeanAbortRate float64
	StdAbortRate  float64
	MeanLatency   float64
	StdLatency    float64

	// ServerCycles is the number of broadcast cycles the longest-running
	// client consumed; the server-side cost of a cycle is independent of
	// the fleet size, which is the scalability property.
	ServerCycles uint64
}

// RunFleet simulates a population of independent clients over one
// broadcast stream. Client i draws its queries (and disconnections) from
// seed cfg.Seed + 1000*(i+1); the server-side update stream is identical
// for everyone, exactly as a shared broadcast channel behaves.
func RunFleet(cfg Config, clients int) (*FleetMetrics, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("sim: fleet size must be positive, got %d", clients)
	}
	fm := &FleetMetrics{Clients: clients}
	var abort, latency stats.Accumulator
	for i := 0; i < clients; i++ {
		c := cfg
		c.ClientSeed = cfg.Seed + 1000*int64(i+1)
		m, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", i, err)
		}
		fm.PerClient = append(fm.PerClient, m)
		abort.Add(m.AbortRate)
		latency.Add(m.MeanLatency)
		if m.Cycles > fm.ServerCycles {
			fm.ServerCycles = m.Cycles
		}
	}
	fm.MeanAbortRate = abort.Mean()
	fm.StdAbortRate = abort.Std()
	fm.MeanLatency = latency.Mean()
	fm.StdLatency = latency.Std()
	return fm, nil
}
