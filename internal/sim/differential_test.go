package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bpush/internal/core"
	"bpush/internal/fault"
	"bpush/internal/obs"
)

// differentialSeeds is the seed sweep of the shared-index differential
// suite: enough seeds that every scheme path (aborts, marked continuations,
// overflow walks, graph pruning) is exercised under both index modes.
var differentialSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34}

// diffRun executes cfg once and returns its metrics plus the canonical
// JSONL traces (client and producer streams).
func diffRun(t *testing.T, cfg Config) (*Metrics, []byte, []byte) {
	t.Helper()
	var cbuf, sbuf bytes.Buffer
	cw, sw := obs.NewJSONL(&cbuf), obs.NewJSONL(&sbuf)
	cfg.Recorder = cw
	cfg.SourceRecorder = sw
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Err() != nil || sw.Err() != nil {
		t.Fatalf("trace write errors: %v / %v", cw.Err(), sw.Err())
	}
	return m, cbuf.Bytes(), sbuf.Bytes()
}

// assertIndexInvisible runs cfg under the shared per-cycle index and again
// with ForceLocalIndex (every consumer rebuilds its control-info
// structures from the raw becast) and requires the two executions to be
// observationally identical: equal Metrics and byte-identical JSONL
// traces. This is the tentpole's acceptance property — the shared index is
// an optimization, never a behavior change.
func assertIndexInvisible(t *testing.T, cfg Config) {
	t.Helper()
	shared := cfg
	shared.ForceLocalIndex = false
	local := cfg
	local.ForceLocalIndex = true

	sm, sc, ss := diffRun(t, shared)
	lm, lc, ls := diffRun(t, local)

	if !reflect.DeepEqual(sm, lm) {
		t.Errorf("metrics differ between shared and local index:\nshared: %+v\nlocal:  %+v", sm, lm)
	}
	if len(sc) == 0 {
		t.Fatalf("empty client trace")
	}
	if !bytes.Equal(sc, lc) {
		t.Errorf("client traces differ between shared and local index (%d vs %d bytes)", len(sc), len(lc))
	}
	if !bytes.Equal(ss, ls) {
		t.Errorf("producer traces differ between shared and local index (%d vs %d bytes)", len(ss), len(ls))
	}
}

// TestSharedIndexDifferential is the full differential sweep: every scheme,
// at item granularity and (where the method defines it) bucket granularity,
// across eight seeds. Shared-index and forced-local runs must be
// byte-identical.
func TestSharedIndexDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed differential sweep")
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"inv-only", core.Options{Kind: core.KindInvOnly}},
		{"inv-only-bucket", core.Options{Kind: core.KindInvOnly, CacheSize: 40, BucketGranularity: 8}},
		{"vcache", core.Options{Kind: core.KindVCache, CacheSize: 40}},
		{"vcache-bucket", core.Options{Kind: core.KindVCache, CacheSize: 40, BucketGranularity: 8}},
		{"multiversion", core.Options{Kind: core.KindMVBroadcast}},
		{"mv-cache", core.Options{Kind: core.KindMVCache, CacheSize: 40, OldFraction: 0.6}},
		{"mv-cache-bucket", core.Options{Kind: core.KindMVCache, CacheSize: 40, BucketGranularity: 8}},
		{"sgt", core.Options{Kind: core.KindSGT, CacheSize: 40}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, seed := range differentialSeeds {
				cfg := testConfig(v.opts.Kind, v.opts.CacheSize)
				cfg.Scheme = v.opts
				cfg.Seed = seed
				cfg.Queries = 80
				cfg.Warmup = 10
				cfg.Check = false
				if v.opts.Kind == core.KindMVBroadcast {
					cfg.ServerVersions = 6
				}
				assertIndexInvisible(t, cfg)
				if t.Failed() {
					t.Fatalf("divergence at seed %d", seed)
				}
			}
		})
	}
}

// TestSharedIndexDifferentialUnderFaults covers the fallback path the fault
// layer forces: corrupted-but-decodable and truncated frames arrive as
// fresh, unindexed becasts, so a chaos run mixes shared-index cycles with
// locally rebuilt ones. The mix must still match a run with the index off
// everywhere.
func TestSharedIndexDifferentialUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault differential sweep")
	}
	plans := []struct {
		name string
		plan fault.Plan
	}{
		{"corrupt-heavy", fault.Plan{Corrupt: 0.3}},
		{"chaos", fault.Plan{Drop: 0.05, Corrupt: 0.1, Truncate: 0.05, Duplicate: 0.05, Reorder: 0.03}},
	}
	for _, p := range plans {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range differentialSeeds[:4] {
				cfg := testConfig(core.KindInvOnly, 40)
				cfg.Seed = seed
				cfg.Queries = 60
				cfg.Warmup = 10
				cfg.Check = false
				cfg.Fault = p.plan
				assertIndexInvisible(t, cfg)
				if t.Failed() {
					t.Fatalf("divergence at seed %d", seed)
				}
			}
		})
	}
}

// TestSharedIndexDifferentialFleet extends the property to fleets: many
// clients sharing one producer's index must produce exactly the metrics
// and traces of a fleet where every client rebuilds locally.
func TestSharedIndexDifferentialFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet differential")
	}
	const clients = 5
	run := func(forceLocal bool) ([]Metrics, []byte) {
		cfg := testConfig(core.KindSGT, 40)
		cfg.Queries = 40
		cfg.Warmup = 5
		cfg.Check = false
		cfg.ForceLocalIndex = forceLocal
		cfg.Parallel = 2
		bufs := make([]bytes.Buffer, clients)
		recs := make([]*obs.JSONL, clients)
		for i := range recs {
			recs[i] = obs.NewJSONL(&bufs[i])
		}
		cfg.RecorderFor = func(i int) obs.Recorder { return recs[i] }
		fm, err := RunFleet(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		for i := range bufs {
			if recs[i].Err() != nil {
				t.Fatalf("client %d trace error: %v", i, recs[i].Err())
			}
			fmt.Fprintf(&out, "client %d\n", i)
			out.Write(bufs[i].Bytes())
		}
		perClient := make([]Metrics, len(fm.PerClient))
		for i, m := range fm.PerClient {
			perClient[i] = *m
		}
		return perClient, out.Bytes()
	}
	sharedM, sharedT := run(false)
	localM, localT := run(true)
	if !reflect.DeepEqual(sharedM, localM) {
		t.Errorf("fleet metrics differ between shared and local index")
	}
	if len(sharedT) == 0 {
		t.Fatalf("empty fleet trace")
	}
	if !bytes.Equal(sharedT, localT) {
		t.Errorf("fleet traces differ between shared and local index")
	}
}
