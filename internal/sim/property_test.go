package sim

import (
	"fmt"
	"testing"

	"bpush/internal/core"
	"bpush/internal/obs"
)

// TestOracleAcrossSeedsAndSchemes is the package's property sweep: every
// scheme under several random workloads, every commit checked by the
// consistency oracle. Any inconsistency anywhere in the protocol stack
// fails the run.
func TestOracleAcrossSeedsAndSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	variants := []core.Options{
		{Kind: core.KindInvOnly},
		{Kind: core.KindInvOnly, CacheSize: 40, BucketGranularity: 8},
		{Kind: core.KindVCache, CacheSize: 40},
		{Kind: core.KindVCache, CacheSize: 40, AllowChannelOldReads: true},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVCache, CacheSize: 40, OldFraction: 0.6},
		{Kind: core.KindMVCache, CacheSize: 40, AllowChannelOldReads: true},
		{Kind: core.KindSGT, CacheSize: 40},
	}
	for _, seed := range []int64{3, 17, 91} {
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%v-seed%d", v.Kind, seed), func(t *testing.T) {
				cfg := testConfig(v.Kind, v.CacheSize)
				cfg.Scheme = v
				cfg.Seed = seed
				cfg.Queries = 120
				if v.Kind == core.KindMVBroadcast {
					cfg.ServerVersions = 8
				}
				if _, err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestOracleUnderDisconnections stresses the disconnection paths (misses,
// resync, tolerance) with the oracle on.
func TestOracleUnderDisconnections(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	variants := []core.Options{
		{Kind: core.KindInvOnly, CacheSize: 40},
		{Kind: core.KindInvOnly, CacheSize: 40, ResyncOnReconnect: true},
		{Kind: core.KindVCache, CacheSize: 40, ResyncOnReconnect: true},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVCache, CacheSize: 40},
		{Kind: core.KindSGT},
		{Kind: core.KindSGT, TolerateDisconnects: true},
	}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("%v-res%v-tol%v", v.Kind, v.ResyncOnReconnect, v.TolerateDisconnects), func(t *testing.T) {
			cfg := testConfig(v.Kind, v.CacheSize)
			cfg.Scheme = v
			cfg.DisconnectProb = 0.25
			cfg.Queries = 120
			if v.Kind == core.KindMVBroadcast {
				cfg.ServerVersions = 10
			}
			m, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Committed > 0 && m.OracleChecked == 0 && m.OracleSkipped == 0 {
				t.Error("oracle never consulted")
			}
		})
	}
}

// TestBroadcastDiskProgramUnderOracle exercises the non-flat organization
// end to end with consistency checking.
func TestBroadcastDiskProgramUnderOracle(t *testing.T) {
	cfg := testConfig(core.KindInvOnly, 30)
	cfg.DiskHot = 40
	cfg.DiskFreq = 3
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The program repeats hot items: the becast must be longer than D.
	if m.MeanBcastSlots <= float64(cfg.DBSize) {
		t.Errorf("becast %.0f slots with a 3x hot disk, want > %d", m.MeanBcastSlots, cfg.DBSize)
	}
}

// TestBroadcastDiskReducesHotLatency verifies the latency motivation of
// the broadcast-disk extension: queries over the hot partition wait less.
func TestBroadcastDiskReducesHotLatency(t *testing.T) {
	base := testConfig(core.KindInvOnly, 0)
	base.ReadRange = 40 // clients only query the hot partition
	base.OpsPerQuery = 4
	flat, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	disk := base
	disk.DiskHot = 40
	disk.DiskFreq = 4
	diskM, err := Run(disk)
	if err != nil {
		t.Fatal(err)
	}
	if diskM.MeanLatencySlots >= flat.MeanLatencySlots {
		t.Errorf("hot-disk latency %.1f slots >= flat %.1f; fast disk must reduce waits",
			diskM.MeanLatencySlots, flat.MeanLatencySlots)
	}
}

// eventCollector is a test recorder that keeps events of one type.
type eventCollector struct {
	typ    obs.Type
	events []obs.Event
}

func (c *eventCollector) Record(e obs.Event) {
	if e.Type == c.typ {
		c.events = append(c.events, e)
	}
}

// TestMultiversionSpanBound pins Theorem 2's abort condition (§3.2): an
// S-multiversion server guarantees every transaction with span <= S, so a
// multiversion abort can only happen once the query has been active for
// more than S cycles (the versions it needed fell off the air). The
// latency in cycles recorded on the abort event upper-bounds nothing —
// it *is* at least the span — so every abort must report Cycles > S.
func TestMultiversionSpanBound(t *testing.T) {
	const S = 2
	aborts := 0
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		cfg := testConfig(core.KindMVBroadcast, 0)
		cfg.ServerVersions = S
		cfg.ThinkTime = 60 // long think time pushes spans past S
		cfg.OpsPerQuery = 8
		cfg.Seed = seed
		cfg.Queries = 80
		col := &eventCollector{typ: obs.TypeAbort}
		cfg.Recorder = col
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		for _, e := range col.events {
			aborts++
			if e.Cycles <= S {
				t.Errorf("seed %d: multiversion abort with latency %d cycles <= S=%d (reason %q)",
					seed, e.Cycles, S, e.Reason)
			}
		}
	}
	t.Logf("aborts observed across seeds: %d", aborts)

	// The complementary direction: with S comfortably above any span the
	// workload can produce, multiversion never aborts at all.
	for _, seed := range []int64{1, 2, 3} {
		cfg := testConfig(core.KindMVBroadcast, 0)
		cfg.ServerVersions = 24
		cfg.Seed = seed
		cfg.Queries = 80
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Aborted != 0 {
			t.Errorf("seed %d: %d aborts with S=24 far above attainable spans", seed, m.Aborted)
		}
	}
}

// TestSGTCommitsAtLeastInvOnly pins the §3.3 motivation for carrying
// serialization-graph deltas: invalidation-only aborts on *any* readset
// overwrite, while SGT aborts only when a read actually closes a cycle —
// a strictly weaker condition. Per seed, over the same workload, SGT must
// commit at least as many queries.
func TestSGTCommitsAtLeastInvOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		inv := testConfig(core.KindInvOnly, 0)
		inv.Seed = seed
		invM, err := Run(inv)
		if err != nil {
			t.Fatal(err)
		}
		sgt := testConfig(core.KindSGT, 0)
		sgt.Seed = seed
		sgtM, err := Run(sgt)
		if err != nil {
			t.Fatal(err)
		}
		if sgtM.Committed < invM.Committed {
			t.Errorf("seed %d: SGT committed %d < invalidation-only %d",
				seed, sgtM.Committed, invM.Committed)
		}
	}
}

// TestMVCacheCommitsAtLeastInvCache pins the §4.2 claim for the
// multiversion cache: when the cache is ample enough to retain the older
// versions that keep marked transactions alive, MVCache commits at least
// as many queries as the plain invalidation scheme with the same cache.
func TestMVCacheCommitsAtLeastInvCache(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	const cacheSize = 200 // = ReadRange: every queried item fits
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		inv := testConfig(core.KindInvOnly, cacheSize)
		inv.Seed = seed
		invM, err := Run(inv)
		if err != nil {
			t.Fatal(err)
		}
		mvc := testConfig(core.KindMVCache, cacheSize)
		mvc.Seed = seed
		mvcM, err := Run(mvc)
		if err != nil {
			t.Fatal(err)
		}
		if mvcM.Committed < invM.Committed {
			t.Errorf("seed %d: mv-cache committed %d < inv+cache %d",
				seed, mvcM.Committed, invM.Committed)
		}
	}
}
