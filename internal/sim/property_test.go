package sim

import (
	"fmt"
	"testing"

	"bpush/internal/core"
)

// TestOracleAcrossSeedsAndSchemes is the package's property sweep: every
// scheme under several random workloads, every commit checked by the
// consistency oracle. Any inconsistency anywhere in the protocol stack
// fails the run.
func TestOracleAcrossSeedsAndSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	variants := []core.Options{
		{Kind: core.KindInvOnly},
		{Kind: core.KindInvOnly, CacheSize: 40, BucketGranularity: 8},
		{Kind: core.KindVCache, CacheSize: 40},
		{Kind: core.KindVCache, CacheSize: 40, AllowChannelOldReads: true},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVCache, CacheSize: 40, OldFraction: 0.6},
		{Kind: core.KindMVCache, CacheSize: 40, AllowChannelOldReads: true},
		{Kind: core.KindSGT, CacheSize: 40},
	}
	for _, seed := range []int64{3, 17, 91} {
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%v-seed%d", v.Kind, seed), func(t *testing.T) {
				cfg := testConfig(v.Kind, v.CacheSize)
				cfg.Scheme = v
				cfg.Seed = seed
				cfg.Queries = 120
				if v.Kind == core.KindMVBroadcast {
					cfg.ServerVersions = 8
				}
				if _, err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestOracleUnderDisconnections stresses the disconnection paths (misses,
// resync, tolerance) with the oracle on.
func TestOracleUnderDisconnections(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	variants := []core.Options{
		{Kind: core.KindInvOnly, CacheSize: 40},
		{Kind: core.KindInvOnly, CacheSize: 40, ResyncOnReconnect: true},
		{Kind: core.KindVCache, CacheSize: 40, ResyncOnReconnect: true},
		{Kind: core.KindMVBroadcast},
		{Kind: core.KindMVCache, CacheSize: 40},
		{Kind: core.KindSGT},
		{Kind: core.KindSGT, TolerateDisconnects: true},
	}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("%v-res%v-tol%v", v.Kind, v.ResyncOnReconnect, v.TolerateDisconnects), func(t *testing.T) {
			cfg := testConfig(v.Kind, v.CacheSize)
			cfg.Scheme = v
			cfg.DisconnectProb = 0.25
			cfg.Queries = 120
			if v.Kind == core.KindMVBroadcast {
				cfg.ServerVersions = 10
			}
			m, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Committed > 0 && m.OracleChecked == 0 && m.OracleSkipped == 0 {
				t.Error("oracle never consulted")
			}
		})
	}
}

// TestBroadcastDiskProgramUnderOracle exercises the non-flat organization
// end to end with consistency checking.
func TestBroadcastDiskProgramUnderOracle(t *testing.T) {
	cfg := testConfig(core.KindInvOnly, 30)
	cfg.DiskHot = 40
	cfg.DiskFreq = 3
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The program repeats hot items: the becast must be longer than D.
	if m.MeanBcastSlots <= float64(cfg.DBSize) {
		t.Errorf("becast %.0f slots with a 3x hot disk, want > %d", m.MeanBcastSlots, cfg.DBSize)
	}
}

// TestBroadcastDiskReducesHotLatency verifies the latency motivation of
// the broadcast-disk extension: queries over the hot partition wait less.
func TestBroadcastDiskReducesHotLatency(t *testing.T) {
	base := testConfig(core.KindInvOnly, 0)
	base.ReadRange = 40 // clients only query the hot partition
	base.OpsPerQuery = 4
	flat, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	disk := base
	disk.DiskHot = 40
	disk.DiskFreq = 4
	diskM, err := Run(disk)
	if err != nil {
		t.Fatal(err)
	}
	if diskM.MeanLatencySlots >= flat.MeanLatencySlots {
		t.Errorf("hot-disk latency %.1f slots >= flat %.1f; fast disk must reduce waits",
			diskM.MeanLatencySlots, flat.MeanLatencySlots)
	}
}
