package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bpush/internal/core"
	"bpush/internal/obs"
)

// producerWorkerCounts is the pipeline sweep of the producer
// differential suite; 1 is the baseline every other count must match.
var producerWorkerCounts = []int{1, 2, 4, 8}

// assertProducerWorkersInvisible runs cfg with the commit pipeline
// single-threaded and again at the given worker count and requires the
// two executions to be observationally identical: equal Metrics and
// byte-identical JSONL traces on both the client and the producer
// stream. This is the tentpole's acceptance property — the multi-core
// commit pipeline is a throughput lever, never a behavior change.
func assertProducerWorkersInvisible(t *testing.T, cfg Config, workers int) {
	t.Helper()
	serial := cfg
	serial.ProducerWorkers = 1
	parallel := cfg
	parallel.ProducerWorkers = workers

	sm, sc, ss := diffRun(t, serial)
	pm, pc, ps := diffRun(t, parallel)

	if !reflect.DeepEqual(sm, pm) {
		t.Errorf("metrics differ between 1 and %d producer workers:\n1: %+v\n%d: %+v", workers, sm, workers, pm)
	}
	if len(sc) == 0 {
		t.Fatalf("empty client trace")
	}
	if !bytes.Equal(sc, pc) {
		t.Errorf("client traces differ between 1 and %d producer workers (%d vs %d bytes)", workers, len(sc), len(pc))
	}
	if len(ss) == 0 {
		t.Fatalf("empty producer trace")
	}
	if !bytes.Equal(ss, ps) {
		t.Errorf("producer traces differ between 1 and %d producer workers (%d vs %d bytes)", workers, len(ss), len(ps))
	}
}

// TestProducerPipelineDifferential is the end-to-end differential sweep
// of the commit pipeline: across eight seeds, every tested worker count,
// and both invalidation-report granularities (per-item and bucketed),
// runs must be byte-identical to the single-threaded pipeline.
func TestProducerPipelineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed producer differential sweep")
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"sgt-item", core.Options{Kind: core.KindSGT, CacheSize: 40}},
		{"inv-only-bucket", core.Options{Kind: core.KindInvOnly, CacheSize: 40, BucketGranularity: 8}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, seed := range differentialSeeds {
				for _, workers := range producerWorkerCounts[1:] {
					cfg := testConfig(v.opts.Kind, v.opts.CacheSize)
					cfg.Scheme = v.opts
					cfg.Seed = seed
					cfg.Queries = 60
					cfg.Warmup = 10
					cfg.Check = false
					assertProducerWorkersInvisible(t, cfg, workers)
					if t.Failed() {
						t.Fatalf("divergence at seed %d, workers %d", seed, workers)
					}
				}
			}
		})
	}
}

// TestProducerPipelineDifferentialFleet extends the property to fleets:
// many clients sharing one pipelined producer must see exactly the
// metrics and traces of a fleet fed by the single-threaded pipeline.
func TestProducerPipelineDifferentialFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet producer differential")
	}
	const clients = 5
	run := func(producerWorkers int) ([]Metrics, []byte) {
		cfg := testConfig(core.KindSGT, 40)
		cfg.Queries = 40
		cfg.Warmup = 5
		cfg.Check = false
		cfg.Parallel = 2
		cfg.ProducerWorkers = producerWorkers
		bufs := make([]bytes.Buffer, clients)
		recs := make([]*obs.JSONL, clients)
		for i := range recs {
			recs[i] = obs.NewJSONL(&bufs[i])
		}
		cfg.RecorderFor = func(i int) obs.Recorder { return recs[i] }
		fm, err := RunFleet(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		for i := range bufs {
			if recs[i].Err() != nil {
				t.Fatalf("client %d trace error: %v", i, recs[i].Err())
			}
			fmt.Fprintf(&out, "client %d\n", i)
			out.Write(bufs[i].Bytes())
		}
		perClient := make([]Metrics, len(fm.PerClient))
		for i, m := range fm.PerClient {
			perClient[i] = *m
		}
		return perClient, out.Bytes()
	}
	serialM, serialT := run(1)
	for _, workers := range []int{4, 8} {
		pipeM, pipeT := run(workers)
		if !reflect.DeepEqual(serialM, pipeM) {
			t.Errorf("fleet metrics differ between 1 and %d producer workers", workers)
		}
		if len(serialT) == 0 {
			t.Fatalf("empty fleet trace")
		}
		if !bytes.Equal(serialT, pipeT) {
			t.Errorf("fleet traces differ between 1 and %d producer workers", workers)
		}
	}
}
