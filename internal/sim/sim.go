// Package sim implements the cycle-driven simulation of §5.1 of Pitoura &
// Chrysanthis: a server committing N update transactions per broadcast
// cycle, the becast assembly, and a client running read-only queries
// through one of the core schemes. All randomness derives from a single
// seed, and the server-side workload stream is independent of the scheme
// under test, so different schemes can be compared on identical histories.
//
// The simulator optionally checks every committed query against a
// correctness oracle: schemes that name a serialization cycle are checked
// value-by-value against the archived database state of that cycle
// (Theorems 1, 2, 4, 5), and SGT commits are checked by rebuilding the full
// serialization graph with the query's dependency and precedence edges and
// asserting acyclicity (Theorem 3).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"bpush/internal/bdisk"
	"bpush/internal/broadcast"
	"bpush/internal/client"
	"bpush/internal/core"
	"bpush/internal/model"
	"bpush/internal/server"
	"bpush/internal/sg"
	"bpush/internal/stats"
	"bpush/internal/workload"
)

// Config collects every parameter of the performance model (Figure 4) plus
// run control. DefaultConfig returns the paper's defaults.
type Config struct {
	// Server and broadcast parameters.
	DBSize         int     // D: broadcast size in items
	UpdateRange    int     // update distribution range
	Offset         int     // update-vs-client-read pattern deviation
	Theta          float64 // Zipf parameter
	ServerTx       int     // N: transactions committed per cycle
	Updates        int     // U: updates per cycle
	ReadsPerUpdate int     // server read:write ratio
	ServerVersions int     // S: versions the server keeps on air

	// Scheme under test.
	Scheme core.Options

	// Client parameters.
	ReadRange      int
	OpsPerQuery    int
	ThinkTime      int
	DisconnectProb float64

	// Broadcast organization: with DiskFreq >= 2, items 1..DiskHot are
	// placed on a fast broadcast disk spinning DiskFreq times per cycle
	// (the §7 broadcast-disk extension); zero means the flat program.
	DiskHot  int
	DiskFreq int
	// Intervals enables the §7 h-interval organization: the broadcast
	// period is split into this many intervals, each carrying 1/H of the
	// item space plus an invalidation report covering the interval. The
	// simulator then treats every interval as one (short) cycle: commits
	// happen H times per period and reports are H times as frequent.
	// Zero or one keeps the classic whole-period cycle. Must divide
	// DBSize, ServerTx, and Updates; incompatible with broadcast disks.
	Intervals int

	// Run control.
	Queries      int   // measured queries
	Warmup       int   // unmeasured queries to reach steady state
	Seed         int64 // master seed (drives the server-side workload)
	ClientSeed   int64 // client-side seed; 0 derives it from Seed. RunFleet sets it per client so a fleet shares one broadcast stream.
	Check        bool  // enable the correctness oracle
	OracleWindow int   // archived cycles for the oracle (default 512)
}

// DefaultConfig returns the paper's default operating point: D=1000,
// UpdateRange=500, theta=0.95, offset 100, N=10 server transactions, U=50
// updates per cycle, reads 4x updates, ReadRange=1000, 10 ops per query,
// think time 2 slots, 100-page cache (set on the Scheme by callers).
func DefaultConfig() Config {
	return Config{
		DBSize:         1000,
		UpdateRange:    500,
		Offset:         100,
		Theta:          0.95,
		ServerTx:       10,
		Updates:        50,
		ReadsPerUpdate: 4,
		ServerVersions: 1,
		ReadRange:      1000,
		OpsPerQuery:    10,
		ThinkTime:      2,
		Queries:        2000,
		Warmup:         100,
		Seed:           1,
		Check:          false,
		OracleWindow:   512,
	}
}

func (c Config) validate() error {
	if c.DBSize <= 0 || c.ReadRange <= 0 || c.ReadRange > c.DBSize {
		return fmt.Errorf("sim: invalid DBSize/ReadRange %d/%d", c.DBSize, c.ReadRange)
	}
	if c.ServerVersions < 1 {
		return fmt.Errorf("sim: ServerVersions must be >= 1, got %d", c.ServerVersions)
	}
	if c.Queries <= 0 || c.Warmup < 0 {
		return fmt.Errorf("sim: invalid Queries/Warmup %d/%d", c.Queries, c.Warmup)
	}
	if c.OracleWindow < 8 {
		return fmt.Errorf("sim: OracleWindow must be >= 8, got %d", c.OracleWindow)
	}
	if c.Intervals > 1 {
		if c.DiskFreq >= 2 {
			return fmt.Errorf("sim: h-interval organization is incompatible with broadcast disks")
		}
		if c.DBSize%c.Intervals != 0 || c.ServerTx%c.Intervals != 0 || c.Updates%c.Intervals != 0 {
			return fmt.Errorf("sim: Intervals=%d must divide DBSize=%d, ServerTx=%d, and Updates=%d",
				c.Intervals, c.DBSize, c.ServerTx, c.Updates)
		}
	}
	return nil
}

// Metrics summarizes one run.
type Metrics struct {
	SchemeName string

	Queries   int
	Committed int
	Aborted   int

	AbortRate  float64
	AcceptRate float64

	// MeanLatency and MeanSpan are in broadcast cycles, over committed
	// queries only (matching the paper's latency metric).
	MeanLatency float64
	MeanSpan    float64
	// MeanLatencySlots is the same latency in broadcast slots, the
	// right unit when comparing organizations with different cycle
	// lengths (broadcast disks, multiversion overflow).
	MeanLatencySlots float64
	// MeanStaleness is the mean distance, in cycles, between a committed
	// query's commit cycle and the database state it serialized against
	// — the currency metric of §5.2.2 (0 = the most current view).
	// SGT commits have no named state and are excluded.
	MeanStaleness float64

	CacheHitRate     float64 // fraction of reads served from cache
	OverflowReadRate float64 // fraction of reads served from overflow
	MeanBcastSlots   float64 // mean becast length (data + overflow slots)

	Cycles        uint64 // broadcast cycles simulated
	OracleChecked int
	OracleSkipped int
}

// Run executes one simulation.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{DBSize: cfg.DBSize, MaxVersions: cfg.ServerVersions})
	if err != nil {
		return nil, err
	}
	intervals := cfg.Intervals
	if intervals < 1 {
		intervals = 1
	}
	sgen, err := workload.NewServerGen(workload.ServerConfig{
		DBSize:          cfg.DBSize,
		UpdateRange:     cfg.UpdateRange,
		Offset:          cfg.Offset,
		Theta:           cfg.Theta,
		TxPerCycle:      cfg.ServerTx / intervals,
		UpdatesPerCycle: cfg.Updates / intervals,
		ReadsPerUpdate:  cfg.ReadsPerUpdate,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	clientSeed := cfg.ClientSeed
	if clientSeed == 0 {
		clientSeed = cfg.Seed + 1
	}
	qgen, err := workload.NewQueryGen(workload.ClientConfig{
		ReadRange:   cfg.ReadRange,
		Theta:       cfg.Theta,
		OpsPerQuery: cfg.OpsPerQuery,
	}, rand.New(rand.NewSource(clientSeed)))
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	prog := broadcast.FlatProgram(cfg.DBSize)
	if cfg.DiskFreq >= 2 {
		prog, err = bdisk.TwoDisk(cfg.DBSize, cfg.DiskHot, cfg.DiskFreq)
		if err != nil {
			return nil, err
		}
	}
	feed := &simFeed{
		srv:     srv,
		gen:     sgen,
		archive: newArchive(cfg.OracleWindow),
	}
	if intervals > 1 {
		per := cfg.DBSize / intervals
		for k := 0; k < intervals; k++ {
			feed.chunks = append(feed.chunks, prog[k*per:(k+1)*per])
		}
	} else {
		feed.prog = prog
	}
	cl, err := client.New(scheme, feed, client.Config{
		ThinkTime:      cfg.ThinkTime,
		DisconnectProb: cfg.DisconnectProb,
		Seed:           clientSeed + 1,
	})
	if err != nil {
		return nil, err
	}

	m := &Metrics{SchemeName: scheme.Name()}
	var latency, latencySlots, span, bcastLen, staleness stats.Accumulator
	var reads, cacheReads, overflowReads int

	total := cfg.Warmup + cfg.Queries
	for q := 0; q < total; q++ {
		res, err := cl.RunQuery(qgen.Query())
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", q, err)
		}
		if cfg.Check && res.Committed {
			if err := feed.archive.check(res.Info); err != nil {
				if errors.Is(err, errOracleWindow) {
					m.OracleSkipped++
				} else {
					return nil, fmt.Errorf("query %d: ORACLE VIOLATION: %w", q, err)
				}
			} else {
				m.OracleChecked++
			}
		}
		if q < cfg.Warmup {
			continue
		}
		m.Queries++
		if res.Committed {
			m.Committed++
			latency.Add(float64(res.LatencyCycles))
			latencySlots.Add(float64(res.LatencySlots))
			span.Add(float64(res.Span))
			if res.Info.SerializationCycle != 0 {
				staleness.Add(float64(res.Info.CommitCycle - res.Info.SerializationCycle))
			}
		} else {
			m.Aborted++
		}
		reads += res.Reads
		cacheReads += res.CacheReads
		overflowReads += res.OverflowReads
	}

	m.AbortRate = float64(m.Aborted) / float64(m.Queries)
	m.AcceptRate = float64(m.Committed) / float64(m.Queries)
	m.MeanLatency = latency.Mean()
	m.MeanLatencySlots = latencySlots.Mean()
	m.MeanSpan = span.Mean()
	m.MeanStaleness = staleness.Mean()
	if reads > 0 {
		m.CacheHitRate = float64(cacheReads) / float64(reads)
		m.OverflowReadRate = float64(overflowReads) / float64(reads)
	}
	m.Cycles = feed.cycles
	for _, l := range feed.lens {
		bcastLen.Add(float64(l))
	}
	m.MeanBcastSlots = bcastLen.Mean()
	return m, nil
}

// simFeed drives the server one cycle (or h-interval) per Next call and
// archives states and logs for the oracle.
type simFeed struct {
	srv     *server.Server
	gen     *workload.ServerGen
	prog    broadcast.Program   // full-cycle program (classic organization)
	chunks  []broadcast.Program // per-interval chunks (§7 h-interval organization)
	started bool
	cycles  uint64
	lens    []int
	archive *archive
}

var _ client.Feed = (*simFeed)(nil)

// Next implements client.Feed.
func (f *simFeed) Next() (*broadcast.Bcast, error) {
	var (
		b   *broadcast.Bcast
		err error
	)
	if !f.started {
		f.started = true
		f.archive.addState(1, f.srv.Snapshot())
		b, err = f.assemble(nil)
	} else {
		var log *server.CycleLog
		log, err = f.srv.CommitAndAdvance(f.gen.Cycle())
		if err != nil {
			return nil, err
		}
		f.archive.addLog(log)
		f.archive.addState(log.Cycle, f.srv.Snapshot())
		b, err = f.assemble(log)
	}
	if err != nil {
		return nil, err
	}
	f.cycles++
	if len(f.lens) < 4096 {
		f.lens = append(f.lens, b.Len())
	}
	return b, nil
}

func (f *simFeed) assemble(log *server.CycleLog) (*broadcast.Bcast, error) {
	if len(f.chunks) == 0 {
		return broadcast.Assemble(f.srv, log, f.prog)
	}
	chunk := f.chunks[int(f.srv.Cycle()-1)%len(f.chunks)]
	return broadcast.AssembleChunk(f.srv, log, chunk)
}

var errOracleWindow = errors.New("sim: query outlived the oracle window")

// archive keeps a sliding window of database states and cycle logs, plus
// the full (pruned) serialization graph, for the correctness oracle.
type archive struct {
	window model.Cycle
	states map[model.Cycle]model.DBState
	logs   map[model.Cycle]*server.CycleLog
	graph  *sg.Graph
	latest model.Cycle
}

func newArchive(window int) *archive {
	return &archive{
		window: model.Cycle(window),
		states: make(map[model.Cycle]model.DBState),
		logs:   make(map[model.Cycle]*server.CycleLog),
		graph:  sg.New(),
	}
}

func (a *archive) low() model.Cycle {
	if a.latest <= a.window {
		return 1
	}
	return a.latest - a.window
}

func (a *archive) addState(c model.Cycle, s model.DBState) {
	a.states[c] = s
	if c > a.latest {
		a.latest = c
	}
	delete(a.states, c-a.window)
}

func (a *archive) addLog(l *server.CycleLog) {
	a.logs[l.Cycle] = l
	if l.Cycle > a.latest {
		a.latest = l.Cycle
	}
	if err := a.graph.Apply(l.Delta); err != nil {
		// The server guarantees forward edges; a violation here is a
		// programming error worth surfacing loudly in simulations.
		panic(fmt.Sprintf("sim: archive graph: %v", err))
	}
	delete(a.logs, l.Cycle-a.window)
	a.graph.PruneBefore(a.low())
}

// check verifies a committed query. Schemes naming a serialization cycle
// are checked against that archived state; SGT commits are checked for
// acyclicity against the full graph.
func (a *archive) check(info core.CommitInfo) error {
	if info.StartCycle < a.low() {
		return errOracleWindow
	}
	if info.SerializationCycle != 0 {
		state, ok := a.states[info.SerializationCycle]
		if !ok {
			return errOracleWindow
		}
		for _, obs := range info.Reads {
			want, err := state.Get(obs.Item)
			if err != nil {
				return err
			}
			if obs.Value != want {
				return fmt.Errorf("readset of %v inconsistent with state %v: %v = %d, state holds %d",
					info.CommitCycle, info.SerializationCycle, obs.Item, obs.Value, want)
			}
		}
		return nil
	}
	// SGT: dependency sources are the writers R read from; precedence
	// targets are all transactions that overwrote a readset item after
	// the version R observed. R is serializable iff no target reaches a
	// source.
	var sources, targets []model.TxID
	for _, obs := range info.Reads {
		if !obs.Writer.IsZero() {
			sources = append(sources, obs.Writer)
		}
		from := obs.Version + 1
		if from < a.low() {
			from = a.low()
		}
		for c := from; c <= info.CommitCycle; c++ {
			if log, ok := a.logs[c]; ok {
				targets = append(targets, log.AllWriters[obs.Item]...)
			}
		}
	}
	for _, src := range sources {
		if a.graph.ReachableFromAny(targets, src) {
			return fmt.Errorf("SGT commit at %v not serializable: overwriter path reaches dependency source %v",
				info.CommitCycle, src)
		}
	}
	return nil
}
