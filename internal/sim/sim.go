// Package sim implements the cycle-driven simulation of §5.1 of Pitoura &
// Chrysanthis: a server committing N update transactions per broadcast
// cycle, the becast assembly, and clients running read-only queries
// through one of the core schemes. All randomness derives from a single
// seed, and the server-side workload stream is independent of the scheme
// under test, so different schemes can be compared on identical histories.
//
// Cycle production and consumption are decoupled: a cyclesource.Source
// produces each broadcast cycle (server commits, becast assembly, oracle
// archive snapshot) exactly once into a replayable log, and any number of
// clients consume the shared, immutable stream through per-client feeds.
// Run drives a single client; RunFleet drives a population on a bounded
// worker pool over one source — the paper's architecture, where server
// work is independent of who is listening.
//
// The simulator optionally checks every committed query against a
// correctness oracle: schemes that name a serialization cycle are checked
// value-by-value against the archived database state of that cycle
// (Theorems 1, 2, 4, 5), and SGT commits are checked by rebuilding the full
// serialization graph with the query's dependency and precedence edges and
// asserting acyclicity (Theorem 3).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"bpush/internal/bdisk"
	"bpush/internal/broadcast"
	"bpush/internal/client"
	"bpush/internal/core"
	"bpush/internal/cyclesource"
	"bpush/internal/fault"
	"bpush/internal/obs"
	"bpush/internal/stats"
	"bpush/internal/workload"
)

// Config collects every parameter of the performance model (Figure 4) plus
// run control. DefaultConfig returns the paper's defaults.
type Config struct {
	// Server and broadcast parameters.
	DBSize         int     // D: broadcast size in items
	UpdateRange    int     // update distribution range
	Offset         int     // update-vs-client-read pattern deviation
	Theta          float64 // Zipf parameter
	ServerTx       int     // N: transactions committed per cycle
	Updates        int     // U: updates per cycle
	ReadsPerUpdate int     // server read:write ratio
	ServerVersions int     // S: versions the server keeps on air
	// ProducerWorkers is the worker count of the server's
	// plan/place/execute commit pipeline; 0 or 1 runs it
	// single-threaded. The cycle stream — metrics and traces included —
	// is byte-identical at every setting (the producer differential
	// suite pins this), so the knob is purely a throughput lever.
	ProducerWorkers int

	// Scheme under test.
	Scheme core.Options

	// Client parameters.
	ReadRange      int
	OpsPerQuery    int
	ThinkTime      int
	DisconnectProb float64

	// Fault, when non-zero, interposes a deterministic fault injector
	// between the cycle stream and each client: frames are dropped,
	// corrupted, truncated, duplicated, reordered, or lost in bursts per
	// the plan's probabilities. Faults are per client (independent
	// receivers of a shared channel); each client's injector is seeded
	// from its own seed, so any run replays exactly from (Seed, Fault).
	Fault fault.Plan
	// FaultSeed overrides the per-client fault seed; 0 derives it from
	// the client seed, which keeps a drop-only plan byte-identical to the
	// equivalent DisconnectProb schedule. RunFleet leaves it 0 so every
	// client draws independent faults.
	FaultSeed int64

	// Broadcast organization: with DiskFreq >= 2, items 1..DiskHot are
	// placed on a fast broadcast disk spinning DiskFreq times per cycle
	// (the §7 broadcast-disk extension); zero means the flat program.
	DiskHot  int
	DiskFreq int
	// Intervals enables the §7 h-interval organization: the broadcast
	// period is split into this many intervals, each carrying 1/H of the
	// item space plus an invalidation report covering the interval. The
	// simulator then treats every interval as one (short) cycle: commits
	// happen H times per period and reports are H times as frequent.
	// Zero or one keeps the classic whole-period cycle. Must divide
	// DBSize, ServerTx, and Updates; incompatible with broadcast disks.
	Intervals int

	// ForceLocalIndex disables the shared per-cycle control-info index end
	// to end: the producer does not prime a CycleIndex on its becasts and
	// every client rebuilds its report/delta structures locally, exactly as
	// the pre-index code did. Runs are specified to be byte-identical with
	// the flag on or off (same metrics, same traces); the differential
	// suite enforces that, and benchmarks use the flag to measure the
	// per-client rebuild cost the shared index removes.
	ForceLocalIndex bool

	// Run control.
	Queries      int   // measured queries
	Warmup       int   // unmeasured queries to reach steady state
	Seed         int64 // master seed (drives the server-side workload)
	ClientSeed   int64 // client-side seed; 0 derives it from Seed. RunFleet sets it per client so a fleet shares one broadcast stream.
	Check        bool  // enable the correctness oracle
	OracleWindow int   // archived cycles for the oracle (default 512)
	// Parallel is the worker-pool size RunFleet uses to run clients over
	// the shared cycle stream: 1 forces the serial path, 0 (the default)
	// means one worker per CPU. Results are byte-identical either way —
	// each client's execution is a pure function of the config, its seed,
	// and the (deterministic) shared stream.
	Parallel int

	// Recorder, when non-nil, receives the client-side trace events of a
	// single-client Run: the scheme's reads/invalidations/SG tests and the
	// client runtime's cycle and query outcomes, interleaved in execution
	// order. The stream is single-threaded and virtual-timed, so it is
	// byte-identical across same-seed runs.
	Recorder obs.Recorder
	// RecorderFor, when non-nil, supplies one recorder per fleet client
	// (index 0..clients-1). Per-client recorders are what keep parallel
	// fleet traces deterministic: each client's stream is recorded
	// separately (a shared sink would interleave by worker scheduling),
	// and callers concatenate the buffers in client index order. Run uses
	// RecorderFor(0) when Recorder is nil.
	RecorderFor func(client int) obs.Recorder
	// SourceRecorder, when non-nil, receives the producer-side trace
	// events (cycle production, SG deltas). Production is serialized
	// under the source's lock, so this stream is deterministic even with
	// a parallel fleet racing to trigger production.
	SourceRecorder obs.Recorder

	// LogDir, when non-empty, makes the run's cycle log durable: every
	// produced becast is appended to a segmented disk log in this
	// directory, and a later run over the same directory resumes the
	// identical stream instead of reproducing it. See
	// cyclesource.Config.LogDir.
	LogDir string
	// MemCycles bounds the in-memory cycle window when LogDir is set;
	// older cycles are served from disk. Zero keeps every cycle resident.
	MemCycles int
	// SnapshotEvery is the producer snapshot cadence in cycles when
	// LogDir is set (0 = cyclesource default, negative disables).
	SnapshotEvery int
}

// DefaultConfig returns the paper's default operating point: D=1000,
// UpdateRange=500, theta=0.95, offset 100, N=10 server transactions, U=50
// updates per cycle, reads 4x updates, ReadRange=1000, 10 ops per query,
// think time 2 slots, 100-page cache (set on the Scheme by callers).
func DefaultConfig() Config {
	return Config{
		DBSize:         1000,
		UpdateRange:    500,
		Offset:         100,
		Theta:          0.95,
		ServerTx:       10,
		Updates:        50,
		ReadsPerUpdate: 4,
		ServerVersions: 1,
		ReadRange:      1000,
		OpsPerQuery:    10,
		ThinkTime:      2,
		Queries:        2000,
		Warmup:         100,
		Seed:           1,
		Check:          false,
		OracleWindow:   512,
	}
}

func (c Config) validate() error {
	if c.DBSize <= 0 || c.ReadRange <= 0 || c.ReadRange > c.DBSize {
		return fmt.Errorf("sim: invalid DBSize/ReadRange %d/%d", c.DBSize, c.ReadRange)
	}
	if c.ServerVersions < 1 {
		return fmt.Errorf("sim: ServerVersions must be >= 1, got %d", c.ServerVersions)
	}
	if c.Queries <= 0 || c.Warmup < 0 {
		return fmt.Errorf("sim: invalid Queries/Warmup %d/%d", c.Queries, c.Warmup)
	}
	if c.OracleWindow < 8 {
		return fmt.Errorf("sim: OracleWindow must be >= 8, got %d", c.OracleWindow)
	}
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.Intervals > 1 {
		if c.DiskFreq >= 2 {
			return fmt.Errorf("sim: h-interval organization is incompatible with broadcast disks")
		}
		if c.DBSize%c.Intervals != 0 || c.ServerTx%c.Intervals != 0 || c.Updates%c.Intervals != 0 {
			return fmt.Errorf("sim: Intervals=%d must divide DBSize=%d, ServerTx=%d, and Updates=%d",
				c.Intervals, c.DBSize, c.ServerTx, c.Updates)
		}
	}
	return nil
}

// Metrics summarizes one run.
type Metrics struct {
	SchemeName string

	Queries   int
	Committed int
	Aborted   int

	AbortRate  float64
	AcceptRate float64

	// MeanLatency and MeanSpan are in broadcast cycles, over committed
	// queries only (matching the paper's latency metric).
	MeanLatency float64
	MeanSpan    float64
	// MeanLatencySlots is the same latency in broadcast slots, the
	// right unit when comparing organizations with different cycle
	// lengths (broadcast disks, multiversion overflow).
	MeanLatencySlots float64
	// MeanStaleness is the mean distance, in cycles, between a committed
	// query's commit cycle and the database state it serialized against
	// — the currency metric of §5.2.2 (0 = the most current view).
	// SGT commits have no named state and are excluded.
	MeanStaleness float64
	// MeanReadAge is the mean version age, in cycles, over every read of
	// every committed query: commit cycle minus the version cycle the
	// read observed. Unlike MeanStaleness it is defined for all schemes
	// (SGT included) and weights each read, not each query — the per-read
	// currency the staleness trace events histogram.
	MeanReadAge float64

	CacheHitRate     float64 // fraction of reads served from cache
	OverflowReadRate float64 // fraction of reads served from overflow
	MeanBcastSlots   float64 // mean becast length (data + overflow slots)

	Cycles        uint64 // broadcast cycles this client consumed
	OracleChecked int
	OracleSkipped int

	// MissedCycles counts cycles the client lost to disconnections or
	// injected faults (dropped, corrupted, or truncated frames and
	// undeclared gaps); StaleFrames counts duplicated or reordered frames
	// the receive path discarded.
	MissedCycles int
	StaleFrames  int
}

// NewSource builds the cycle producer for this configuration: the
// becast stream every client of the run consumes. Exposed so callers can
// share one producer across custom consumers; Run and RunFleet construct
// their own.
func (c Config) NewSource() (*cyclesource.Source, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	intervals := c.Intervals
	if intervals < 1 {
		intervals = 1
	}
	var prog broadcast.Program
	if c.DiskFreq >= 2 {
		var err error
		prog, err = bdisk.TwoDisk(c.DBSize, c.DiskHot, c.DiskFreq)
		if err != nil {
			return nil, err
		}
	}
	return cyclesource.New(cyclesource.Config{
		DBSize:   c.DBSize,
		Versions: c.ServerVersions,
		Workers:  c.ProducerWorkers,
		Recorder: c.SourceRecorder,
		Workload: workload.ServerConfig{
			DBSize:          c.DBSize,
			UpdateRange:     c.UpdateRange,
			Offset:          c.Offset,
			Theta:           c.Theta,
			TxPerCycle:      c.ServerTx / intervals,
			UpdatesPerCycle: c.Updates / intervals,
			ReadsPerUpdate:  c.ReadsPerUpdate,
		},
		Seed:          c.Seed,
		Program:       prog,
		Chunks:        intervals,
		Check:         c.Check,
		OracleWindow:  c.OracleWindow,
		DisableIndex:  c.ForceLocalIndex,
		LogDir:        c.LogDir,
		MemCycles:     c.MemCycles,
		SnapshotEvery: c.SnapshotEvery,
	})
}

// Run executes one simulation: one producer, one client.
func Run(cfg Config) (*Metrics, error) {
	src, err := cfg.NewSource()
	if err != nil {
		return nil, err
	}
	defer func() { _ = src.Close() }()
	return runClient(cfg, src)
}

// runClient consumes the shared cycle stream with one client and collects
// its metrics. It is a pure function of (cfg, cfg.ClientSeed, the stream),
// which is what makes fleet results independent of worker interleaving.
func runClient(cfg Config, src *cyclesource.Source) (*Metrics, error) {
	clientSeed := cfg.ClientSeed
	if clientSeed == 0 {
		clientSeed = cfg.Seed + 1
	}
	qgen, err := workload.NewQueryGen(workload.ClientConfig{
		ReadRange:   cfg.ReadRange,
		Theta:       cfg.Theta,
		OpsPerQuery: cfg.OpsPerQuery,
	}, rand.New(rand.NewSource(clientSeed)))
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil && cfg.RecorderFor != nil {
		rec = cfg.RecorderFor(0)
	}
	sopts := cfg.Scheme
	sopts.Recorder = rec
	if cfg.ForceLocalIndex {
		sopts.ForceLocalIndex = true
	}
	scheme, err := core.New(sopts)
	if err != nil {
		return nil, err
	}
	feed := src.NewFeed()
	ccfg := client.Config{
		ThinkTime:      cfg.ThinkTime,
		DisconnectProb: cfg.DisconnectProb,
		Seed:           clientSeed + 1,
		Recorder:       rec,
	}
	var cl *client.Client
	if cfg.Fault.IsZero() {
		cl, err = client.New(scheme, feed, ccfg)
	} else {
		// The injector's default seed is the same one the client's
		// disconnect RNG would use, so a drop-only plan replays the exact
		// DisconnectProb schedule.
		fseed := cfg.FaultSeed
		if fseed == 0 {
			fseed = clientSeed + 1
		}
		var inj *fault.Injector
		inj, err = fault.New(feed, cfg.Fault, fseed)
		if err != nil {
			return nil, err
		}
		inj.Observe(rec)
		cl, err = client.NewFromEvents(scheme, inj, ccfg)
	}
	if err != nil {
		return nil, err
	}

	m := &Metrics{SchemeName: scheme.Name()}
	var latency, latencySlots, span, bcastLen, staleness, readAge stats.Accumulator
	var reads, cacheReads, overflowReads int

	total := cfg.Warmup + cfg.Queries
	for q := 0; q < total; q++ {
		res, err := cl.RunQuery(qgen.Query())
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", q, err)
		}
		if cfg.Check && res.Committed {
			if err := src.Check(res.Info); err != nil {
				if errors.Is(err, cyclesource.ErrOracleWindow) {
					m.OracleSkipped++
				} else {
					return nil, fmt.Errorf("query %d: ORACLE VIOLATION: %w", q, err)
				}
			} else {
				m.OracleChecked++
			}
		}
		if q < cfg.Warmup {
			continue
		}
		m.Queries++
		if res.Committed {
			m.Committed++
			latency.Add(float64(res.LatencyCycles))
			latencySlots.Add(float64(res.LatencySlots))
			span.Add(float64(res.Span))
			if res.Info.SerializationCycle != 0 {
				staleness.Add(float64(res.Info.CommitCycle - res.Info.SerializationCycle))
			}
			for _, ro := range res.Info.Reads {
				readAge.Add(float64(res.Info.CommitCycle - ro.Version))
			}
		} else {
			m.Aborted++
		}
		reads += res.Reads
		cacheReads += res.CacheReads
		overflowReads += res.OverflowReads
	}

	m.AbortRate = float64(m.Aborted) / float64(m.Queries)
	m.AcceptRate = float64(m.Committed) / float64(m.Queries)
	m.MeanLatency = latency.Mean()
	m.MeanLatencySlots = latencySlots.Mean()
	m.MeanSpan = span.Mean()
	m.MeanStaleness = staleness.Mean()
	m.MeanReadAge = readAge.Mean()
	if reads > 0 {
		m.CacheHitRate = float64(cacheReads) / float64(reads)
		m.OverflowReadRate = float64(overflowReads) / float64(reads)
	}
	m.Cycles = feed.Cycles()
	for _, l := range feed.Lens() {
		bcastLen.Add(float64(l))
	}
	m.MeanBcastSlots = bcastLen.Mean()
	m.MissedCycles = cl.Missed()
	m.StaleFrames = cl.Stale()
	return m, nil
}
