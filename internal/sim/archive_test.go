package sim

import (
	"errors"
	"testing"

	"bpush/internal/core"
	"bpush/internal/model"
	"bpush/internal/server"
	"bpush/internal/sg"
)

func archLog(c model.Cycle, writers map[model.ItemID][]model.TxID) *server.CycleLog {
	l := &server.CycleLog{
		Cycle:       c,
		FirstWriter: make(map[model.ItemID]model.TxID),
		LastWriter:  make(map[model.ItemID]model.TxID),
		AllWriters:  writers,
	}
	l.Delta.Cycle = c
	for item, ws := range writers {
		l.FirstWriter[item] = ws[0]
		l.LastWriter[item] = ws[len(ws)-1]
		l.Delta.Nodes = append(l.Delta.Nodes, ws...)
	}
	return l
}

func TestArchiveWindowEviction(t *testing.T) {
	a := newArchive(8)
	for c := model.Cycle(1); c <= 20; c++ {
		a.addState(c, model.DBState{model.Value(c)})
	}
	if _, ok := a.states[5]; ok {
		t.Error("state 5 survived a window of 8 at cycle 20")
	}
	if _, ok := a.states[20]; !ok {
		t.Error("latest state missing")
	}
	if a.low() != 12 {
		t.Errorf("low() = %v, want 12", a.low())
	}
}

func TestArchiveCheckStateMismatch(t *testing.T) {
	a := newArchive(16)
	a.addState(3, model.DBState{10, 20})
	info := core.CommitInfo{
		StartCycle:         3,
		CommitCycle:        3,
		SerializationCycle: 3,
		Reads:              []model.ReadObservation{{Item: 2, Value: 99}},
	}
	if err := a.check(info); err == nil {
		t.Error("inconsistent readset passed the oracle")
	}
	info.Reads[0].Value = 20
	if err := a.check(info); err != nil {
		t.Errorf("consistent readset rejected: %v", err)
	}
}

func TestArchiveCheckOutsideWindow(t *testing.T) {
	a := newArchive(8)
	for c := model.Cycle(1); c <= 30; c++ {
		a.addState(c, model.DBState{1})
	}
	info := core.CommitInfo{StartCycle: 2, CommitCycle: 3, SerializationCycle: 3}
	if err := a.check(info); !errors.Is(err, errOracleWindow) {
		t.Errorf("check outside window = %v, want errOracleWindow", err)
	}
}

func TestArchiveSGTCheck(t *testing.T) {
	a := newArchive(32)
	ta := model.TxID{Cycle: 2, Seq: 0}
	tb := model.TxID{Cycle: 3, Seq: 0}
	// T_a wrote item 1 (cycle 2); T_b wrote item 2 (cycle 3); and there
	// is a server path T_a -> T_b.
	la := archLog(2, map[model.ItemID][]model.TxID{1: {ta}})
	lb := archLog(3, map[model.ItemID][]model.TxID{2: {tb}})
	lb.Delta.Edges = append(lb.Delta.Edges, edge(ta, tb))
	a.addLog(la)
	a.addLog(lb)

	// Query read item 2 from T_b (version 3) and item 1 at version 1
	// (pre-T_a); T_a overwrote it afterwards. Dependency source T_b,
	// precedence target T_a, path T_a -> T_b: cycle -> must fail.
	bad := core.CommitInfo{
		StartCycle:  2,
		CommitCycle: 3,
		Reads: []model.ReadObservation{
			{Item: 1, Value: 0, Version: 1, Writer: model.InitialLoadTx},
			{Item: 2, Value: 0, Version: 3, Writer: tb},
		},
	}
	if err := a.check(bad); err == nil {
		t.Error("non-serializable SGT commit passed the oracle")
	}

	// Reading item 1's *current* version (written by T_a) instead is
	// serializable: no precedence target precedes a dependency source.
	good := core.CommitInfo{
		StartCycle:  2,
		CommitCycle: 3,
		Reads: []model.ReadObservation{
			{Item: 1, Value: 0, Version: 2, Writer: ta},
			{Item: 2, Value: 0, Version: 3, Writer: tb},
		},
	}
	if err := a.check(good); err != nil {
		t.Errorf("serializable SGT commit rejected: %v", err)
	}
}

func edge(from, to model.TxID) sg.Edge { return sg.Edge{From: from, To: to} }
