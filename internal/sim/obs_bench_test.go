package sim

import (
	"math/rand"
	"testing"

	"bpush/internal/client"
	"bpush/internal/core"
	"bpush/internal/cyclesource"
	"bpush/internal/obs"
	"bpush/internal/workload"
)

// benchObservedClient drives one client over a pre-built shared source with
// the given recorder attached to both the scheme and the client runtime.
// The pair of benchmarks below measures the cost of *attaching* a recorder
// that discards everything (obs.Nop) versus leaving the path unobserved
// (nil recorder, every record site gated off). The delta is event
// construction plus one interface dispatch per event — the price any real
// sink pays before doing its own work. Acceptance bar is <2%, recorded in
// BENCH_obs.json, mirroring the fault layer's BENCH_fault.json.
func benchObservedClient(b *testing.B, src *cyclesource.Source, cfg Config, rec obs.Recorder) {
	b.Helper()
	sopts := cfg.Scheme
	sopts.Recorder = rec
	scheme, err := core.New(sopts)
	if err != nil {
		b.Fatal(err)
	}
	qgen, err := workload.NewQueryGen(workload.ClientConfig{
		ReadRange:   cfg.ReadRange,
		Theta:       cfg.Theta,
		OpsPerQuery: cfg.OpsPerQuery,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	cl, err := client.New(scheme, src.NewFeed(), client.Config{ThinkTime: cfg.ThinkTime, Recorder: rec})
	if err != nil {
		b.Fatal(err)
	}
	for q := 0; q < cfg.Queries; q++ {
		if _, err := cl.RunQuery(qgen.Query()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNopRecorderBaseline is the unobserved path: recorder nil, so
// every record site short-circuits before building an event.
func BenchmarkNopRecorderBaseline(b *testing.B) {
	src, cfg := benchCleanSetup(b)
	benchObservedClient(b, src, cfg, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchObservedClient(b, src, cfg, nil)
	}
}

// BenchmarkNopRecorderAttached runs the identical workload with obs.Nop
// attached: events are constructed and dispatched through the Recorder
// interface, then discarded.
func BenchmarkNopRecorderAttached(b *testing.B) {
	src, cfg := benchCleanSetup(b)
	benchObservedClient(b, src, cfg, obs.Nop{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchObservedClient(b, src, cfg, obs.Nop{})
	}
}
