package lockmgr

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpush/internal/model"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Lock(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(2, 7, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := New()
	if err := m.Lock(1, 7, Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, 7, Shared) }()
	select {
	case <-got:
		t.Fatal("shared lock granted while exclusive held")
	case <-time.After(50 * time.Millisecond):
	}
	m.Release(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("shared lock never granted after release")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	if err := m.Lock(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	// Sole holder upgrades immediately.
	if err := m.Lock(1, 3, Exclusive); err != nil {
		t.Fatal(err)
	}
	// X then S is a no-op.
	if err := m.Lock(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	if got := m.Held(1); got != 1 {
		t.Errorf("Held = %d, want 1 (one item)", got)
	}
}

func TestFIFONoWriterStarvation(t *testing.T) {
	m := New()
	if err := m.Lock(1, 5, Shared); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Lock(2, 5, Exclusive) }()
	time.Sleep(20 * time.Millisecond) // writer is now queued
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Lock(3, 5, Shared) }()
	select {
	case <-readerDone:
		t.Fatal("late reader barged past a queued writer")
	case <-time.After(50 * time.Millisecond):
	}
	m.Release(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.Release(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 20, Exclusive); err != nil {
		t.Fatal(err)
	}
	// T1 waits for 20 (held by T2).
	t1done := make(chan error, 1)
	go func() { t1done <- m.Lock(1, 20, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// T2 requesting 10 closes the cycle and must be refused immediately.
	err := m.Lock(2, 10, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("deadlock not detected: %v", err)
	}
	m.Release(2) // victim releases; T1 proceeds
	if err := <-t1done; err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, 4, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 4, Shared); err != nil {
		t.Fatal(err)
	}
	// Both try to upgrade: the second must be victimized.
	t1done := make(chan error, 1)
	go func() { t1done <- m.Lock(1, 4, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Lock(2, 4, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("upgrade deadlock not detected: %v", err)
	}
	m.Release(2)
	if err := <-t1done; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWakesQueue(t *testing.T) {
	m := New()
	if err := m.Lock(1, 9, Exclusive); err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	var wg sync.WaitGroup
	var granted atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(tx TxHandle) {
			defer wg.Done()
			if err := m.Lock(tx, 9, Shared); err == nil {
				granted.Add(1)
			}
		}(TxHandle(10 + i))
	}
	time.Sleep(30 * time.Millisecond)
	m.Release(1)
	wg.Wait()
	if granted.Load() != waiters {
		t.Errorf("granted %d of %d queued readers", granted.Load(), waiters)
	}
}

func TestInvalidMode(t *testing.T) {
	m := New()
	if err := m.Lock(1, 1, Mode(9)); err == nil {
		t.Error("invalid mode accepted")
	}
}

// TestRandomizedNoLostWakeups hammers the manager with short random
// transactions; every one must eventually finish (no lost wakeups, every
// deadlock victim unblocked).
func TestRandomizedNoLostWakeups(t *testing.T) {
	m := New()
	const (
		txCount = 60
		items   = 8
	)
	var wg sync.WaitGroup
	var finished atomic.Int64
	for i := 0; i < txCount; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			tx := TxHandle(id + 1)
			for attempt := 0; attempt < 100; attempt++ {
				ok := true
				for op := 0; op < 3; op++ {
					item := model.ItemID(rng.Intn(items) + 1)
					mode := Shared
					if rng.Intn(2) == 0 {
						mode = Exclusive
					}
					if err := m.Lock(tx, item, mode); err != nil {
						ok = false
						break
					}
				}
				m.Release(tx)
				if ok {
					finished.Add(1)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("lock manager hung")
	}
	if finished.Load() != txCount {
		t.Errorf("%d of %d transactions finished", finished.Load(), txCount)
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}
