// Package lockmgr implements a strict two-phase-locking lock manager for
// the broadcast server. The paper makes no assumption about server-side
// concurrency control beyond serializability, noting that "a more
// practical method, e.g., most probably two-phase locking, may be
// employed" (§3.3); this package provides exactly that substrate, so the
// server can execute update transactions concurrently while still
// producing the serializable histories the broadcast protocols assume.
//
// Locks are item-granularity, shared (read) or exclusive (write), granted
// FIFO with no barging. Deadlocks are detected by cycle search on the
// waits-for graph at block time; the requester that would close the cycle
// is chosen as the victim and its request fails with ErrDeadlock, after
// which the caller is expected to release everything and retry.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bpush/internal/det"
	"bpush/internal/model"
)

// ErrDeadlock is returned to a requester chosen as a deadlock victim
// (either by the waits-for cycle check at block time or by the wait
// timeout, which backstops edge staleness).
var ErrDeadlock = errors.New("lockmgr: deadlock victim")

// DefaultWaitTimeout bounds how long a request may stay blocked before it
// is victimized. The waits-for check catches most cycles eagerly; the
// timeout guarantees liveness for the rest.
const DefaultWaitTimeout = 2 * time.Second

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// TxHandle identifies a transaction to the lock manager.
type TxHandle int64

// Manager is the lock manager. All state is guarded by one mutex; waiting
// is done on per-request condition channels so the manager scales to the
// moderate transaction counts of a broadcast server cycle.
type Manager struct {
	mu    sync.Mutex
	items map[model.ItemID]*lockState
	held  map[TxHandle]map[model.ItemID]Mode
	// waitsFor[a] = set of transactions a is currently waiting on.
	waitsFor map[TxHandle]map[TxHandle]struct{}
	timeout  time.Duration
}

type lockState struct {
	holders map[TxHandle]Mode
	queue   []*request
}

type request struct {
	tx    TxHandle
	mode  Mode
	grant chan error // buffered(1): receives nil on grant, ErrDeadlock on victimization
}

// New creates a lock manager with the default wait timeout.
func New() *Manager { return NewWithTimeout(DefaultWaitTimeout) }

// NewWithTimeout creates a lock manager whose blocked requests are
// victimized after the given timeout; zero disables the backstop.
func NewWithTimeout(timeout time.Duration) *Manager {
	return &Manager{
		items:    make(map[model.ItemID]*lockState),
		held:     make(map[TxHandle]map[model.ItemID]Mode),
		waitsFor: make(map[TxHandle]map[TxHandle]struct{}),
		timeout:  timeout,
	}
}

// Lock acquires item in the given mode for tx, blocking until granted. A
// Shared request by a holder is a no-op; an Exclusive request by a Shared
// holder is an upgrade (granted when tx is the only holder). Returns
// ErrDeadlock if granting would require waiting on a cycle; the caller
// must then Release(tx) and retry the whole transaction.
func (m *Manager) Lock(tx TxHandle, item model.ItemID, mode Mode) error {
	if mode != Shared && mode != Exclusive {
		return fmt.Errorf("lockmgr: invalid mode %v", mode)
	}
	m.mu.Lock()
	st := m.items[item]
	if st == nil {
		st = &lockState{holders: make(map[TxHandle]Mode)}
		m.items[item] = st
	}
	if cur, ok := st.holders[tx]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade S -> X.
	}
	if m.grantable(st, tx, mode) {
		m.grant(st, tx, item, mode)
		m.mu.Unlock()
		return nil
	}
	// Must wait: deadlock check first. tx would wait on every
	// conflicting holder and every queued conflicting requester.
	blockers := m.blockersLocked(st, tx, mode)
	if m.wouldDeadlock(tx, blockers) {
		m.mu.Unlock()
		return ErrDeadlock
	}
	req := &request{tx: tx, mode: mode, grant: make(chan error, 1)}
	st.queue = append(st.queue, req)
	m.setWaits(tx, blockers)
	m.mu.Unlock()

	if m.timeout <= 0 {
		return <-req.grant
	}
	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case err := <-req.grant:
		return err
	case <-timer.C:
		// Victimize, unless a grant raced ahead of the timer.
		m.mu.Lock()
		if m.dequeueLocked(item, req) {
			delete(m.waitsFor, tx)
			m.mu.Unlock()
			return ErrDeadlock
		}
		m.mu.Unlock()
		return <-req.grant // grant/victimization already decided
	}
}

// dequeueLocked removes req from item's queue, reporting whether it was
// still queued.
func (m *Manager) dequeueLocked(item model.ItemID, req *request) bool {
	st := m.items[item]
	if st == nil {
		return false
	}
	for i, q := range st.queue {
		if q == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			m.wakeLocked(item, st)
			return true
		}
	}
	return false
}

// grantable reports whether tx can take item in mode right now. FIFO: a
// new request is only grantable if no queued request conflicts ahead of
// it (prevents writer starvation), except lock upgrades, which jump the
// queue when the holder is alone.
func (m *Manager) grantable(st *lockState, tx TxHandle, mode Mode) bool {
	if cur, ok := st.holders[tx]; ok && cur == Shared && mode == Exclusive {
		return len(st.holders) == 1 // upgrade when sole holder
	}
	if mode == Shared {
		for h, hm := range st.holders {
			if h != tx && hm == Exclusive {
				return false
			}
		}
		// No barging past queued writers.
		for _, q := range st.queue {
			if q.mode == Exclusive {
				return false
			}
		}
		return true
	}
	// Exclusive: no other holder, nothing queued.
	for h := range st.holders {
		if h != tx {
			return false
		}
	}
	return len(st.queue) == 0
}

func (m *Manager) grant(st *lockState, tx TxHandle, item model.ItemID, mode Mode) {
	st.holders[tx] = mode
	if m.held[tx] == nil {
		m.held[tx] = make(map[model.ItemID]Mode)
	}
	m.held[tx][item] = mode
}

// blockersLocked lists the transactions tx would wait on for item/mode.
func (m *Manager) blockersLocked(st *lockState, tx TxHandle, mode Mode) []TxHandle {
	var out []TxHandle
	for _, h := range det.SortedKeys(st.holders) {
		if h == tx {
			continue
		}
		if mode == Exclusive || st.holders[h] == Exclusive {
			out = append(out, h)
		}
	}
	for _, q := range st.queue {
		if q.tx != tx && (mode == Exclusive || q.mode == Exclusive) {
			out = append(out, q.tx)
		}
	}
	return out
}

// wouldDeadlock reports whether making tx wait on blockers closes a cycle
// in the waits-for graph.
func (m *Manager) wouldDeadlock(tx TxHandle, blockers []TxHandle) bool {
	// DFS from each blocker through waitsFor; reaching tx = cycle.
	seen := make(map[TxHandle]struct{})
	var stack []TxHandle
	stack = append(stack, blockers...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == tx {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		stack = append(stack, det.SortedKeys(m.waitsFor[n])...)
	}
	return false
}

func (m *Manager) setWaits(tx TxHandle, blockers []TxHandle) {
	set := make(map[TxHandle]struct{}, len(blockers))
	for _, b := range blockers {
		set[b] = struct{}{}
	}
	m.waitsFor[tx] = set
}

// Release drops every lock tx holds and removes its queued requests,
// waking whoever becomes grantable.
func (m *Manager) Release(tx TxHandle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitsFor, tx)
	for _, item := range det.SortedKeys(m.held[tx]) {
		st := m.items[item]
		delete(st.holders, tx)
		m.wakeLocked(item, st)
	}
	delete(m.held, tx)
	// Drop queued requests from tx (a victim releasing while queued
	// elsewhere) and tell them to stop waiting.
	for _, item := range det.SortedKeys(m.items) {
		st := m.items[item]
		changed := false
		keep := st.queue[:0]
		for _, q := range st.queue {
			if q.tx == tx {
				q.grant <- ErrDeadlock
				changed = true
				continue
			}
			keep = append(keep, q)
		}
		st.queue = keep
		if changed {
			m.wakeLocked(item, st)
		}
	}
}

// wakeLocked grants queued requests that became grantable — lock upgrades
// first (they jump the queue once their holder is alone, which is what
// unblocks them at all), then the FIFO head — and refreshes the waits-for
// edges of whoever is still queued, so the deadlock check never works
// from stale blocker sets.
func (m *Manager) wakeLocked(item model.ItemID, st *lockState) {
	progress := true
	for progress {
		progress = false
		// Upgrades: a queued X request whose tx is the sole (shared)
		// holder.
		for i, q := range st.queue {
			if cur, ok := st.holders[q.tx]; ok && cur == Shared && q.mode == Exclusive && len(st.holders) == 1 {
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				m.grant(st, q.tx, item, q.mode)
				delete(m.waitsFor, q.tx)
				q.grant <- nil
				progress = true
				break
			}
		}
		if progress {
			continue
		}
		if len(st.queue) == 0 {
			break
		}
		q := st.queue[0]
		if !m.headGrantable(st, q) {
			break
		}
		st.queue = st.queue[1:]
		m.grant(st, q.tx, item, q.mode)
		delete(m.waitsFor, q.tx)
		q.grant <- nil
		progress = true
	}
	for _, q := range st.queue {
		m.setWaits(q.tx, m.blockersLocked(st, q.tx, q.mode))
	}
	if len(st.holders) == 0 && len(st.queue) == 0 {
		delete(m.items, item)
	}
}

// headGrantable reports whether the FIFO head request can take the lock
// given only the current holders.
func (m *Manager) headGrantable(st *lockState, q *request) bool {
	if q.mode == Shared {
		for h, hm := range st.holders {
			if h != q.tx && hm == Exclusive {
				return false
			}
		}
		return true
	}
	for h := range st.holders {
		if h != q.tx {
			return false
		}
	}
	return true
}

// Held returns the number of locks tx currently holds (for tests).
func (m *Manager) Held(tx TxHandle) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tx])
}
