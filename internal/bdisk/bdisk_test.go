package bdisk

import (
	"testing"

	"bpush/internal/broadcast"
	"bpush/internal/model"
	"bpush/internal/server"
)

func items(ids ...int) []model.ItemID {
	out := make([]model.ItemID, len(ids))
	for i, id := range ids {
		out[i] = model.ItemID(id)
	}
	return out
}

func TestProgramValidation(t *testing.T) {
	tests := []struct {
		name  string
		disks []Disk
	}{
		{"no disks", nil},
		{"zero frequency", []Disk{{Items: items(1), Frequency: 0}}},
		{"empty disk", []Disk{{Items: nil, Frequency: 1}}},
		{"duplicate item", []Disk{
			{Items: items(1, 2), Frequency: 2},
			{Items: items(2, 3), Frequency: 1},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Program(tt.disks); err == nil {
				t.Error("invalid disks accepted")
			}
		})
	}
}

func TestFrequenciesMatchDiskSpeeds(t *testing.T) {
	prog, err := Program([]Disk{
		{Items: items(1, 2), Frequency: 3},
		{Items: items(3, 4, 5, 6, 7, 8), Frequency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	freq := Frequencies(prog)
	for _, hot := range items(1, 2) {
		if freq[hot] != 3 {
			t.Errorf("hot item %v appears %d times, want 3", hot, freq[hot])
		}
	}
	for _, cold := range items(3, 4, 5, 6, 7, 8) {
		if freq[cold] < 1 {
			t.Errorf("cold item %v missing from program", cold)
		}
	}
}

func TestTwoDiskCoversDatabase(t *testing.T) {
	prog, err := TwoDisk(20, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	freq := Frequencies(prog)
	for i := 1; i <= 20; i++ {
		if freq[model.ItemID(i)] == 0 {
			t.Errorf("item %d missing", i)
		}
	}
	if freq[1] != 4 {
		t.Errorf("hot item appears %d times, want 4", freq[1])
	}
}

func TestTwoDiskValidation(t *testing.T) {
	if _, err := TwoDisk(10, 0, 2); err == nil {
		t.Error("hot=0 accepted")
	}
	if _, err := TwoDisk(10, 10, 2); err == nil {
		t.Error("hot=dbSize accepted")
	}
}

func TestMeanSpacingHotBeatsFlat(t *testing.T) {
	prog, err := TwoDisk(40, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	flatSpacing := 40.0 // flat program: every item once per 40 slots
	hot := MeanSpacing(prog, 1)
	if hot >= flatSpacing {
		t.Errorf("hot item mean spacing %.1f >= flat %.1f; fast disk must reduce wait", hot, flatSpacing)
	}
	cold := MeanSpacing(prog, 40)
	if cold <= flatSpacing {
		t.Errorf("cold item mean spacing %.1f <= flat %.1f; slow disk must pay", cold, flatSpacing)
	}
}

func TestMeanSpacingEdgeCases(t *testing.T) {
	prog := broadcast.Program{1, 2, 1, 3}
	if got := MeanSpacing(prog, 9); got != 0 {
		t.Errorf("absent item spacing = %g, want 0", got)
	}
	if got := MeanSpacing(prog, 2); got != 4 {
		t.Errorf("single-appearance spacing = %g, want program length 4", got)
	}
	if got := MeanSpacing(prog, 1); got != 2 {
		t.Errorf("item 1 spacing = %g, want 2", got)
	}
}

func TestProgramAssemblesWithServer(t *testing.T) {
	prog, err := TwoDisk(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DBSize: 12, MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := broadcast.Assemble(srv, nil, prog)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(prog) {
		t.Errorf("becast length %d != program length %d", b.Len(), len(prog))
	}
	// Every item findable at its first position.
	for i := 1; i <= 12; i++ {
		if b.Position(model.ItemID(i)) < 0 {
			t.Errorf("item %d has no position", i)
		}
	}
}

func TestLCM(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{1, 1, 1}, {2, 3, 6}, {4, 6, 12}, {5, 5, 5},
	}
	for _, tt := range tests {
		if got := lcm(tt.a, tt.b); got != tt.want {
			t.Errorf("lcm(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
