// Package bdisk generates non-flat broadcast programs following the
// broadcast-disk organization of Acharya et al., the §7 extension of
// Pitoura & Chrysanthis: items are partitioned onto "disks" spinning at
// different speeds, so hot items appear several times per becast and cold
// items once, reducing expected access latency for skewed access patterns.
//
// The generation algorithm is the classical one: with disk frequencies
// f_1 >= f_2 >= ... and C = lcm(f_1..f_n) chunks, disk i is split into
// C/f_i chunks and the program interleaves one chunk of every disk per
// minor cycle, C minor cycles per becast.
package bdisk

import (
	"fmt"

	"bpush/internal/broadcast"
	"bpush/internal/model"
)

// Disk is one group of items broadcast with a common frequency.
type Disk struct {
	// Items assigned to this disk.
	Items []model.ItemID
	// Frequency is the relative broadcast frequency (>= 1). An item on
	// a frequency-3 disk appears three times as often as an item on a
	// frequency-1 disk.
	Frequency int
}

// Program builds the broadcast program for the given disks. Every item
// appears Frequency times per major cycle (becast). Items must be unique
// across disks.
func Program(disks []Disk) (broadcast.Program, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("bdisk: no disks")
	}
	seen := make(map[model.ItemID]struct{})
	chunks := 1
	for i, d := range disks {
		if d.Frequency < 1 {
			return nil, fmt.Errorf("bdisk: disk %d frequency %d < 1", i, d.Frequency)
		}
		if len(d.Items) == 0 {
			return nil, fmt.Errorf("bdisk: disk %d is empty", i)
		}
		for _, it := range d.Items {
			if _, dup := seen[it]; dup {
				return nil, fmt.Errorf("bdisk: %v assigned to multiple disks", it)
			}
			seen[it] = struct{}{}
		}
		chunks = lcm(chunks, d.Frequency)
	}

	// Split disk i into chunks/f_i chunks (padding the last chunk by
	// wrapping, like the classical algorithm pads with empty slots; we
	// wrap to keep slots data-carrying).
	type diskChunks struct {
		parts [][]model.ItemID
	}
	split := make([]diskChunks, len(disks))
	for i, d := range disks {
		n := chunks / d.Frequency
		parts := make([][]model.ItemID, n)
		per := (len(d.Items) + n - 1) / n
		for p := 0; p < n; p++ {
			lo := p * per
			hi := lo + per
			if lo >= len(d.Items) {
				// Wrap: repeat the head so every chunk carries data.
				parts[p] = d.Items[:min(per, len(d.Items))]
				continue
			}
			if hi > len(d.Items) {
				hi = len(d.Items)
			}
			parts[p] = d.Items[lo:hi]
		}
		split[i] = diskChunks{parts: parts}
	}

	var prog broadcast.Program
	for minor := 0; minor < chunks; minor++ {
		for i := range disks {
			part := split[i].parts[minor%len(split[i].parts)]
			prog = append(prog, part...)
		}
	}
	return prog, nil
}

// TwoDisk is a convenience constructor: the hot items (1..hot) on a disk
// spinning freq times faster than the cold disk carrying hot+1..dbSize.
func TwoDisk(dbSize, hot, freq int) (broadcast.Program, error) {
	if hot <= 0 || hot >= dbSize {
		return nil, fmt.Errorf("bdisk: hot partition %d outside 1..%d", hot, dbSize-1)
	}
	hotItems := make([]model.ItemID, hot)
	for i := range hotItems {
		hotItems[i] = model.ItemID(i + 1)
	}
	coldItems := make([]model.ItemID, dbSize-hot)
	for i := range coldItems {
		coldItems[i] = model.ItemID(hot + i + 1)
	}
	return Program([]Disk{
		{Items: hotItems, Frequency: freq},
		{Items: coldItems, Frequency: 1},
	})
}

// Frequencies counts how many times each item appears in a program.
func Frequencies(p broadcast.Program) map[model.ItemID]int {
	out := make(map[model.ItemID]int)
	for _, it := range p {
		out[it]++
	}
	return out
}

// MeanSpacing returns the average distance (in slots) between consecutive
// appearances of item in the cyclic program — the expected wait for the
// item is half of this. Returns the program length for items appearing
// once, and 0 for absent items.
func MeanSpacing(p broadcast.Program, item model.ItemID) float64 {
	var hits []int
	for i, it := range p {
		if it == item {
			hits = append(hits, i)
		}
	}
	if len(hits) == 0 {
		return 0
	}
	if len(hits) == 1 {
		return float64(len(p))
	}
	total := 0
	for i := 1; i < len(hits); i++ {
		total += hits[i] - hits[i-1]
	}
	total += len(p) - hits[len(hits)-1] + hits[0] // wrap-around gap
	return float64(total) / float64(len(hits))
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
