module bpush

go 1.22
